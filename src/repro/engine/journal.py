"""Run journals: durable per-item checkpoints for resumable runs.

A long sweep or synthesis run dies for boring reasons — a machine
reboot, an OOM kill of the whole process tree, a Ctrl-C — and without a
journal every completed per-K check dies with it.  A :class:`RunJournal`
records each completed work item as one appended line under
``.repro-cache/runs/<run-id>/``, flushed and fsynced before the
supervisor moves on, so ``repro sweep --resume <run-id>`` can skip
exactly the items that finished and re-execute only the rest.

The journal mirrors the result cache's trust model
(:mod:`repro.engine.cache`): every entry is self-verifying (the line
stores the SHA-256 of the pickled payload), and a truncated, bit-rotted
or hand-edited line — the expected state after a hard kill mid-append —
is skipped with a :class:`RuntimeWarning` and counted, never raised.
Keys are the same content-addressed digests produced by
:func:`repro.engine.fingerprint.analysis_key`, so a journal can never
resurrect a result for a protocol or parameter set other than the one
that produced it; ``meta.json`` additionally pins the run's analysis
fingerprint and :meth:`RunJournal.resume` refuses a mismatch outright.

Durability is a dial, not a constant.  With the default
``flush_interval = 0`` every :meth:`RunJournal.record` writes and
fsyncs before returning — the PR 5 contract, one disk sync per work
item.  The batch scheduler completes micro-tasks far faster than a
disk can sync, so :meth:`RunJournal.group_commit` raises the interval
for the duration of a batched run: records accumulate in memory and
are committed together (on the interval, on a full buffer, and always
by the explicit :meth:`flush` on run end).  A hard kill mid-interval
loses at most that uncommitted window; resume simply re-executes the
lost items, so verdicts never change — only how much work a crash can
waste.

Layout::

    .repro-cache/runs/<run-id>/
        meta.json        # run identity: command, fingerprint, created
        journal.jsonl    # one completed work item per line
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import secrets
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import runtime as obs

#: Journal lines carry a format version so a future layout change can
#: keep reading old runs.
_FORMAT_VERSION = 1

RUNS_SUBDIR = "runs"

#: Fsync coalescing window used by :meth:`RunJournal.group_commit` when
#: the caller does not pick one (~the batch scheduler's target batch
#: duration, so a batch of completions costs about one sync).
DEFAULT_GROUP_COMMIT_SECONDS = 0.05

#: A full buffer forces a commit regardless of the interval, bounding
#: the loss window in entries as well as in seconds.
GROUP_COMMIT_MAX_ENTRIES = 128


class JournalError(Exception):
    """An unusable journal (missing run, mismatched fingerprint)."""


@dataclass
class JournalStats:
    """Counters of one journal's lifetime (loading and appending)."""

    entries_loaded: int = 0
    entries_recorded: int = 0
    corrupt_entries: int = 0
    fsyncs: int = 0

    def summary(self) -> str:
        return (f"journal: {self.entries_loaded} entries resumed, "
                f"{self.entries_recorded} recorded, "
                f"{self.corrupt_entries} corrupt entries skipped, "
                f"{self.fsyncs} fsyncs")


def runs_root(cache_dir: str | Path | None = None) -> Path:
    """The directory run journals live under (``<cache-dir>/runs``)."""
    from repro.engine.cache import DEFAULT_CACHE_DIR

    return Path(cache_dir or DEFAULT_CACHE_DIR) / RUNS_SUBDIR


def new_run_id() -> str:
    """A fresh, collision-resistant, sortable run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{secrets.token_hex(3)}"


def list_runs(root: str | Path,
              require_journal: bool = True) -> list[str]:
    """Run ids found under *root*, newest last (lexicographic order —
    ids start with a timestamp).

    By default only journaled (resumable) runs are listed; with
    ``require_journal=False`` any run directory counts — ad-hoc runs
    publish a live ``status.json`` but no journal, and ``repro ps``
    must see them too.
    """
    directory = Path(root)
    if not directory.is_dir():
        return []
    return sorted(p.name for p in directory.iterdir()
                  if (p / "journal.jsonl").exists()
                  or (not require_journal and p.is_dir()))


@dataclass
class RunJournal:
    """Append-only checkpoint log of one supervised run.

    Use :meth:`create` for a fresh run and :meth:`resume` to reload a
    prior run's completed items; both return a journal ready for
    :meth:`record` calls.  ``completed`` maps journal keys to their
    recorded values, in completion order.
    """

    directory: Path
    run_id: str
    meta: dict[str, Any] = field(default_factory=dict)
    completed: dict[str, Any] = field(default_factory=dict)
    stats: JournalStats = field(default_factory=JournalStats)
    flush_interval: float = 0.0
    """Seconds between durable commits: ``0`` (the default) fsyncs on
    every :meth:`record`; a positive interval coalesces — see
    :meth:`group_commit` and :meth:`flush`."""
    flush_max_entries: int = GROUP_COMMIT_MAX_ENTRIES
    _pending: list = field(default_factory=list, init=False, repr=False)
    _last_flush: float = field(default_factory=time.monotonic,
                               init=False, repr=False)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str | Path, run_id: str | None = None,
               flush_interval: float = 0.0,
               flush_max_entries: int = GROUP_COMMIT_MAX_ENTRIES,
               **meta: Any) -> "RunJournal":
        """Start a journal for a new run under ``<root>/<run-id>/``."""
        run_id = run_id or new_run_id()
        directory = Path(root) / run_id
        directory.mkdir(parents=True, exist_ok=True)
        meta = {"run_id": run_id, "format": _FORMAT_VERSION,
                "created": time.time(), **meta}
        (directory / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True, default=repr))
        journal = cls(directory=directory, run_id=run_id, meta=meta,
                      flush_interval=flush_interval,
                      flush_max_entries=flush_max_entries)
        journal.path.touch()
        return journal

    @classmethod
    def resume(cls, root: str | Path, run_id: str,
               fingerprint: str | None = None,
               flush_interval: float = 0.0) -> "RunJournal":
        """Reload the journal of a prior run to continue it.

        *fingerprint*, when given, must equal the ``fingerprint`` the
        run was created with — resuming a sweep of protocol A from a
        journal of protocol B is refused, not silently merged.
        Corrupt or truncated lines (the normal tail state after a hard
        kill) are skipped with a warning.
        """
        directory = Path(root) / run_id
        if not directory.is_dir():
            raise JournalError(
                f"no run {run_id!r} under {Path(root)} "
                f"(known runs: {list_runs(root) or 'none'})")
        journal = cls(directory=directory, run_id=run_id)
        try:
            journal.meta = json.loads(
                (directory / "meta.json").read_text())
        except (OSError, ValueError):
            journal.meta = {"run_id": run_id}
        recorded = journal.meta.get("fingerprint")
        if fingerprint is not None and recorded is not None \
                and recorded != fingerprint:
            raise JournalError(
                f"run {run_id!r} was recorded for a different analysis "
                f"(fingerprint {recorded[:12]}… != {fingerprint[:12]}…); "
                f"refusing to resume")
        journal._load()
        return journal

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self.directory / "journal.jsonl"

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)

    def record(self, key: str, value: Any) -> None:
        """Append one completed item (fsynced before returning unless a
        positive ``flush_interval`` is coalescing commits).

        A value that does not pickle is journaled as a miss (the item
        will re-execute on resume) rather than aborting the run —
        checkpointing, like caching, is an optimisation only.
        """
        if key in self.completed:
            return
        try:
            payload = pickle.dumps(value)
        except Exception:
            return
        line = json.dumps({
            "v": _FORMAT_VERSION,
            "seq": len(self.completed),
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "data": base64.b64encode(payload).decode("ascii"),
        })
        self._pending.append(line.encode("ascii") + b"\n")
        self.completed[key] = value
        self.stats.entries_recorded += 1
        obs.event("checkpoint", run_id=self.run_id, key=key,
                  seq=len(self.completed) - 1)
        obs.metric("supervisor.checkpoints")
        if (self.flush_interval <= 0
                or len(self._pending) >= self.flush_max_entries
                or time.monotonic() - self._last_flush
                >= self.flush_interval):
            self.flush()

    def flush(self) -> None:
        """Commit every buffered entry in one write + fsync.

        Idempotent and cheap when nothing is pending.  Entries that
        have not been flushed are **not durable**: a hard kill loses
        them, and resume re-executes exactly those items.
        """
        self._last_flush = time.monotonic()
        if not self._pending:
            return
        with open(self.path, "ab") as handle:
            handle.write(b"".join(self._pending))
            handle.flush()
            os.fsync(handle.fileno())
        self._pending.clear()
        self.stats.fsyncs += 1
        obs.metric("journal.fsyncs")

    @contextmanager
    def group_commit(self,
                     interval: float = DEFAULT_GROUP_COMMIT_SECONDS):
        """Coalesce fsyncs for the duration of a batched run.

        Raises ``flush_interval`` to *interval* (only when the journal
        is currently in fsync-per-record mode — an explicitly
        configured interval is left alone), and guarantees a final
        :meth:`flush` on exit, including when the block raises: a
        parent that *can* unwind commits everything it recorded.
        """
        raised = self.flush_interval <= 0
        if raised:
            self.flush_interval = interval
        try:
            yield self
        finally:
            if raised:
                self.flush_interval = 0.0
            self.flush()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for number, line in enumerate(raw.split(b"\n"), start=1):
            if not line.strip():
                continue
            value = self._decode(line)
            if value is _CORRUPT:
                self.stats.corrupt_entries += 1
                warnings.warn(
                    f"skipping corrupt journal entry at "
                    f"{self.path}:{number} (truncated or damaged; the "
                    f"item will be re-executed)", RuntimeWarning,
                    stacklevel=3)
                continue
            key, payload = value
            self.completed[key] = payload
            self.stats.entries_loaded += 1

    @staticmethod
    def _decode(line: bytes):
        try:
            entry = json.loads(line)
            payload = base64.b64decode(entry["data"],
                                       validate=True)
            if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
                return _CORRUPT
            return entry["key"], pickle.loads(payload)
        except Exception:
            return _CORRUPT


_CORRUPT = object()
