"""Incremental lattice search over candidate t-arc combinations.

The flat synthesis loop (:meth:`repro.core.synthesis.Synthesizer`)
judges every candidate combination from scratch: rebuild the merged
transition set, re-check Assumptions 1/2 on a fresh ``Digraph``,
re-enumerate the pseudo-livelock support closure, and trail-search the
supports in canonical order.  But the candidate lattice is *monotone* —
adding a t-arc can only add write-projection cycles, so the support set
of a combination contains the support set of every sub-combination, and
a contiguous-trail witness found for a combo is inherited verbatim by
every superset that does not introduce an earlier-sorting witness.

This module walks the combination list (the deterministic
``itertools.product`` prefix order) as a lattice: each combination
extends an already-evaluated parent by exactly one t-arc, and the
parent's evaluation state is checkpointed in place:

* **support-closure delta** — the parent's support frontier (the
  union-closure of its elementary pseudo-livelocks) is kept as a shared
  list with per-node watermarks; a new arc contributes exactly the
  write-projection cycles *through* that arc, so only unions with those
  new elements are formed.  The closure cap triggers iff the flat
  enumeration's cap would (the union count is order-independent), and
  an exploded node prunes its whole subtree with the identical reason.
* **canonical witness inheritance** — per node we track the
  canonically-first witnessing support.  Every support new at a child
  contains the child's arc, so only new supports sorting *before* the
  inherited witness are trail-searched; the first hit (or the inherited
  one) is exactly the flat scan's first witness, making rejection
  strings byte-identical to the flat path.
* **delta-rooted trail search** — a new support's masked-Tarjan pass is
  rooted at the new arc's (source, T-phase) product nodes only
  (:meth:`repro.engine.localkernel.LocalKernel.find_trail` with
  ``root_states``): every matching SCC must use the arc, so restricted
  roots still reach every candidate component.
* **monotone up-set pruning** — witnessing supports are indexed in a
  subset-closed :class:`BlockedMaskIndex` (popcount-bucketed t-arc
  bitmasks); any node whose transition mask covers an indexed mask
  seeds its witness scan with that entry, bounding the scan without a
  single trail query.  Combinations rejected without any leaf-level
  trail query count as ``synthsearch.combos_pruned``; the witness is
  the recorded prune justification.

Parallel runs partition the pending combinations into contiguous
subtree work units dispatched through
:func:`repro.engine.supervisor.supervise_work_items` (task, batch and
serial schedules alike); each unit is evaluated self-contained, so
verdicts are byte-identical for every ``--jobs``/``--schedule``
setting.  Under a :class:`repro.engine.journal.RunJournal` the units
additionally exchange exact trail results through a :class:`PruneBoard`
(an append-only ``prunes.jsonl`` next to the journal): workers publish
newly searched support heads after each unit and absorb the board's
delta before the next one, so prune knowledge crosses process
boundaries between batches.  The board only ever short-circuits
searches whose outcome is already known — correctness never depends on
it — and resumed runs replay it alongside the journaled unit verdicts.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.pseudolivelock import elementary_pseudo_livelocks
from repro.core.selfdisabling import local_transition_graph
from repro.engine.fingerprint import analysis_key
from repro.engine.supervisor import supervise_work_items
from repro.graphs import has_cycle
from repro.obs import runtime as obs
from repro.protocol.actions import LocalTransition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.synthesis import Synthesizer

#: Support-closure cap — must match the default ``max_supports`` of
#: :func:`repro.core.pseudolivelock.pseudo_livelock_supports`, which the
#: flat path calls without an override.
MAX_SUPPORTS = 4096

#: The flat path surfaces :class:`SupportExplosion` via ``str()``; the
#: union count is order-independent, so whenever the incremental closure
#: trips the cap the flat enumeration trips it too, with this message.
EXPLOSION_REASON = (f"more than {MAX_SUPPORTS} pseudo-livelock supports; "
                    f"raise max_supports or reduce the candidate set")

_BIDIRECTIONAL_REASON = (
    "bidirectional ring: Theorem 5.14 only excludes contiguous "
    "livelocks; pass accept_contiguous_only=True to accept such "
    "certificates anyway")

#: Sentinel: the combination batch violates the candidate-pool
#: invariants the lattice relies on — fall back to flat evaluation.
_INVALID_POOL = object()

#: Counter names accumulated per work unit (keys of the delta dicts the
#: unit workers return; also flat :class:`repro.engine.EngineStats`
#: attribute names).
COUNTER_NAMES = ("combos_pruned", "full_evaluations", "delta_reuses",
                 "checkpoint_bytes", "blocked_hits", "board_loaded",
                 "board_published")

#: Deterministic per-support checkpoint cost estimate: list slot +
#: frozenset header plus one word per member.
_SUPPORT_BYTES_BASE = 56
_SUPPORT_BYTES_PER_ARC = 8


def _lattice_unit_worker(synthesizer: "Synthesizer",
                         unit: Sequence[tuple]) -> tuple:
    """Module-level worker for :func:`supervise_work_items`."""
    return synthesizer._lattice.evaluate_unit(list(unit))


class BlockedMaskIndex:
    """Subset-closed index of witnessing-support t-arc bitmasks.

    Entries are stride-bucketed by popcount so a cover query only scans
    buckets that can fit under the queried mask.  ``covers_min`` returns
    the canonically-first indexed support contained in the query — an
    upper bound on the node's first witness that is sound because a
    support is witnessing intrinsically (the trail search depends only
    on the support itself, never on the surrounding combination).
    """

    __slots__ = ("_buckets", "_masks")

    def __init__(self) -> None:
        self._buckets: dict[int, list[tuple]] = {}
        self._masks: set[int] = set()

    def __len__(self) -> int:
        return len(self._masks)

    def add(self, mask: int, key: tuple,
            support: frozenset[LocalTransition], head: tuple) -> None:
        if mask in self._masks:
            return
        self._masks.add(mask)
        self._buckets.setdefault(mask.bit_count(), []).append(
            (mask, key, support, head))

    def covers_min(self, mask: int) -> tuple | None:
        """The minimal-key ``(key, support, head)`` whose mask is a
        subset of *mask*, or ``None``."""
        best: tuple | None = None
        popcount = mask.bit_count()
        for count, bucket in self._buckets.items():
            if count > popcount:
                continue
            for entry_mask, key, support, head in bucket:
                if entry_mask & mask == entry_mask \
                        and (best is None or key < best[0]):
                    best = (key, support, head)
        return best


class PruneBoard:
    """Append-only cross-process exchange of trail-search results.

    One JSONL file next to the run journal; each line records a support
    (as sorted ``[source_index, target_index]`` pairs — stable across
    processes, unlike in-process bit assignments), the ring-size bound
    scanned, and the witness head ``[K, |E|]`` (``null`` when the scan
    was empty).  Readers consume incrementally from their last offset
    and tolerate torn tails and damaged lines; writers append whole
    lines with ``O_APPEND``.  Everything on the board is an exact
    result, so absorbing it can only skip searches, never change them.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._published: set[frozenset[tuple[int, int]]] = set()

    def load_new(self) -> list[tuple]:
        """New complete entries since the last load, as
        ``(pair_key, bound, head | None)`` tuples."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except OSError:
            return []
        end = data.rfind(b"\n")
        if end < 0:
            return []
        chunk = data[:end + 1]
        self._offset += len(chunk)
        entries: list[tuple] = []
        for line in chunk.splitlines():
            try:
                record = json.loads(line)
                key = frozenset((int(s), int(t)) for s, t in record["a"])
                bound = int(record["b"])
                head = record["h"]
                if head is not None:
                    head = (int(head[0]), int(head[1]))
            except (KeyError, TypeError, ValueError, IndexError):
                continue  # damaged line: costs the entry, never the run
            entries.append((key, bound, head))
            self._published.add(key)
        return entries

    def publish(self, entries: Iterable[tuple]) -> int:
        """Append *entries* not already on the board; returns the count."""
        lines = []
        for key, bound, head in entries:
            if key in self._published:
                continue
            self._published.add(key)
            lines.append(json.dumps({
                "a": sorted([source, target] for source, target in key),
                "b": bound,
                "h": list(head) if head is not None else None,
            }, sort_keys=True))
        if not lines:
            return 0
        blob = "".join(line + "\n" for line in lines).encode()
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, blob)
        finally:
            os.close(fd)
        return len(lines)


class _Node:
    """One checkpointed lattice position (the path's last t-arc)."""

    __slots__ = ("arc", "mask", "frontier_mark", "seen_added",
                 "graph_added", "exploded", "witness", "queried")

    def __init__(self, arc: LocalTransition | None) -> None:
        self.arc = arc
        self.mask = 0
        self.frontier_mark = 0
        self.seen_added: list[frozenset] = []
        self.graph_added = False
        self.exploded = False
        #: ``(canonical key, support, (K, |E|))`` of the canonically
        #: first witnessing support, or ``None``.  Invariant: every
        #: support of this node sorting before the witness has been
        #: verified trail-free, so the witness is exactly what the flat
        #: scan reports.
        self.witness: tuple | None = None
        self.queried = False


class LatticeWalker:
    """Prefix-stack evaluator over the candidate lattice.

    Maintains the shared mutable evaluation state — write-projection
    multigraph, support frontier with watermarks, global ``seen`` set,
    trail-head memo — with strict push/pop undo discipline, so walking
    the combination list in product order re-evaluates only the suffix
    that changed.  All node values (explosion flag, witness, leaf
    queried flag) are intrinsic to the node's transition set, which is
    what keeps verdicts independent of how the walk is partitioned
    into work units.
    """

    def __init__(self, kernel, base_transitions, max_ring_size: int,
                 counts: dict[str, int | float],
                 publishing: bool = False) -> None:
        self.kernel = kernel
        self.base = tuple(base_transitions)
        self.max_ring_size = max_ring_size
        self.counts = counts
        self.publishing = publishing
        self.blocked = BlockedMaskIndex()
        self._graph: dict[Any, dict[Any, list[LocalTransition]]] = {}
        self._frontier: list[frozenset] = []
        self._seen: set[frozenset] = set()
        self._canon: dict[frozenset, tuple] = {}
        self._reprs: dict[LocalTransition, str] = {}
        self._pairs: dict[LocalTransition, tuple[int, int]] = {}
        self._by_pair: dict[tuple[int, int], LocalTransition] = {}
        self._bits: dict[LocalTransition, int] = {}
        #: pair-key -> (ring-size bound scanned, (K, |E|) head | None).
        self._heads: dict[frozenset[tuple[int, int]], tuple] = {}
        self._unpublished: list[tuple] = []
        self._stack: list[_Node] = []
        self._path: list[LocalTransition] = []

    # -- shared encodings ----------------------------------------------
    def _pair(self, transition: LocalTransition) -> tuple[int, int]:
        pair = self._pairs.get(transition)
        if pair is None:
            index = self.kernel.index
            pair = (index[transition.source], index[transition.target])
            self._pairs[transition] = pair
            self._by_pair[pair] = transition
        return pair

    def _bit(self, transition: LocalTransition) -> int:
        bit = self._bits.get(transition)
        if bit is None:
            bit = 1 << len(self._bits)
            self._bits[transition] = bit
        return bit

    def _mask(self, transitions: Iterable[LocalTransition]) -> int:
        mask = 0
        for transition in transitions:
            mask |= self._bit(transition)
        return mask

    def _canon_key(self, support: frozenset) -> tuple:
        key = self._canon.get(support)
        if key is None:
            reprs = self._reprs
            parts = []
            for transition in support:
                text = reprs.get(transition)
                if text is None:
                    text = reprs[transition] = repr(transition)
                parts.append(text)
            parts.sort()
            key = (len(support), parts)
            self._canon[support] = key
        return key

    # -- cross-unit knowledge ------------------------------------------
    def absorb(self, entries: Iterable[tuple]) -> None:
        """Fold :class:`PruneBoard` entries into the head memo (and,
        when the support's arcs are known locally, the blocked index)."""
        for key, bound, head in entries:
            known = self._heads.get(key)
            if known is None or (known[1] is None and head is not None) \
                    or (known[1] is None and head is None
                        and bound > known[0]):
                self._heads[key] = (bound, head)
            if head is None:
                continue
            try:
                support = frozenset(self._by_pair[pair] for pair in key)
            except KeyError:
                continue  # arcs from a part of the lattice not seen here
            self.blocked.add(self._mask(support), self._canon_key(support),
                             support, head)

    def take_unpublished(self) -> list[tuple]:
        taken, self._unpublished = self._unpublished, []
        return taken

    # -- trail queries -------------------------------------------------
    def _trail_head(self, support: frozenset,
                    arc: LocalTransition | None) -> tuple | None:
        key = frozenset(self._pair(t) for t in support)
        memo = self._heads.get(key)
        if memo is not None:
            bound, head = memo
            if head is not None:
                return head if head[0] <= self.max_ring_size else None
            if self.max_ring_size <= bound:
                return None
        roots = (arc.source,) if arc is not None else None
        witness = self.kernel.find_trail(support, self.max_ring_size,
                                         root_states=roots)
        head = (witness.ring_size, witness.enablements) \
            if witness is not None else None
        self._heads[key] = (self.max_ring_size, head)
        if self.publishing:
            self._unpublished.append((key, self.max_ring_size, head))
        return head

    # -- new-element enumeration ---------------------------------------
    def _cycles_through(self, arc: LocalTransition) -> list[frozenset]:
        """The elementary pseudo-livelocks through *arc*: node-simple
        write-projection cycles using the arc, expanded over parallel
        edge choices — exactly the elements new to the merged set."""
        start = arc.target.own
        goal = arc.source.own
        if start == goal:
            return [frozenset((arc,))]
        graph = self._graph
        results: list[frozenset] = []
        path_keys: list[LocalTransition] = []
        visited = {start}

        def walk(node: Any) -> None:
            for succ, keys in graph.get(node, {}).items():
                if succ == goal:
                    for key in keys:
                        results.append(frozenset((arc, *path_keys, key)))
                    continue
                if succ == start or succ in visited:
                    continue
                visited.add(succ)
                for key in keys:
                    path_keys.append(key)
                    walk(succ)
                    path_keys.pop()
                visited.discard(succ)

        walk(start)
        return results

    # -- push / pop ----------------------------------------------------
    def ensure_root(self) -> None:
        """Evaluate the base transition set once; reused by every
        combination, every resolve set and every work unit."""
        if self._stack:
            return
        self._graph = {}
        self._frontier = [frozenset()]
        self._seen = {frozenset()}
        for transition in self.base:
            self._graph.setdefault(transition.source.own, {}) \
                .setdefault(transition.target.own, []).append(transition)
        self._apply(None, elementary_pseudo_livelocks(self.base))

    def _apply(self, arc: LocalTransition | None,
               elements: list[frozenset]) -> _Node:
        node = _Node(arc)
        parent = self._stack[-1] if self._stack else None
        node.mask = (parent.mask if parent is not None else 0)
        if arc is not None:
            node.mask |= self._bit(arc)
        node.frontier_mark = len(self._frontier)
        if parent is not None and parent.exploded:
            node.exploded = True
            self._stack.append(node)
            return node

        counts = self.counts
        added_bytes = 0
        frontier, seen = self._frontier, self._seen
        for element in elements:
            limit = len(frontier)  # unions only with the pre-element set
            for i in range(limit):
                union = frontier[i] | element
                if union in seen:
                    continue
                seen.add(union)
                node.seen_added.append(union)
                frontier.append(union)
                added_bytes += (_SUPPORT_BYTES_BASE
                                + _SUPPORT_BYTES_PER_ARC * len(union))
                if len(seen) > MAX_SUPPORTS:
                    node.exploded = True
                    break
            if node.exploded:
                break
        counts["checkpoint_bytes"] += added_bytes
        if node.exploded:
            self._stack.append(node)
            return node

        inherited = parent.witness if parent is not None else None
        best = inherited
        news = frontier[node.frontier_mark:]
        if news:
            shortest = min(len(support) for support in news)
            # The shortcut and the ``queried`` flag are judged against
            # the *inherited* witness only: whether a node needed new
            # support examination is intrinsic to its transition set,
            # so the pruned/evaluated split is identical for every
            # jobs/schedule partitioning.  The blocked-index seed only
            # decides how far the examination actually searches.
            if inherited is None or shortest <= inherited[0][0]:
                # A blocked-index hit below the inherited key can only
                # exist when new supports do (every covered entry is a
                # support of this node, and supports at or above the
                # inherited key never matter), so the index is consulted
                # exactly when the scan runs.
                hit = self.blocked.covers_min(node.mask)
                if hit is not None and (best is None or hit[0] < best[0]):
                    best = hit
                    counts["blocked_hits"] += 1
                for support in sorted(news, key=self._canon_key):
                    key = self._canon_key(support)
                    if inherited is not None and key >= inherited[0]:
                        break
                    node.queried = True
                    if best is not inherited and key >= best[0]:
                        break  # the blocked seed is the first witness
                    head = self._trail_head(support, arc)
                    if head is not None:
                        best = (key, support, head)
                        self.blocked.add(self._mask(support), key,
                                         support, head)
                        break
        node.witness = best
        self._stack.append(node)
        return node

    def _push(self, arc: LocalTransition) -> None:
        self.counts["delta_reuses"] += 1
        parent = self._stack[-1]
        if parent.exploded:
            self._apply(arc, [])
        else:
            source, target = arc.source.own, arc.target.own
            self._graph.setdefault(source, {}) \
                .setdefault(target, []).append(arc)
            elements = self._cycles_through(arc)
            node = self._apply(arc, elements)
            node.graph_added = True
        self._path.append(arc)

    def _rewind(self, depth: int) -> None:
        """Pop nodes until only *depth* arcs remain above the root."""
        while len(self._stack) > depth + 1:
            node = self._stack.pop()
            self._path.pop()
            del self._frontier[node.frontier_mark:]
            for support in node.seen_added:
                self._seen.discard(support)
            if node.graph_added:
                arc = node.arc
                bucket = self._graph[arc.source.own][arc.target.own]
                bucket.pop()  # strict LIFO: this node appended last
                if not bucket:
                    del self._graph[arc.source.own][arc.target.own]
                    if not self._graph[arc.source.own]:
                        del self._graph[arc.source.own]

    # -- verdicts ------------------------------------------------------
    def verdicts(self, combos: Sequence[tuple]) -> list[str | None]:
        """Reasons for *combos* in order (``None`` = accepted), sharing
        checkpoints along common prefixes — state persists across calls,
        so consecutive batches keep extending the same trail."""
        self.ensure_root()
        out: list[str | None] = []
        for combo in combos:
            shared = 0
            for shared, (have, want) in enumerate(zip(self._path, combo)):
                if have != want:
                    break
            else:
                shared = min(len(self._path), len(combo))
            self._rewind(shared)
            for arc in combo[shared:]:
                self._push(arc)
            out.append(self._leaf_reason())
        return out

    def _leaf_reason(self) -> str | None:
        node = self._stack[-1]
        counts = self.counts
        if node.exploded:
            counts["combos_pruned" if not node.queried
                   else "full_evaluations"] += 1
            return EXPLOSION_REASON
        if node.witness is None:
            counts["full_evaluations"] += 1
            return None
        if node.queried:
            counts["full_evaluations"] += 1
        else:
            counts["combos_pruned"] += 1
        _key, support, head = node.witness
        return ("pseudo-livelock {"
                + ", ".join(sorted(t.label or str(t) for t in support))
                + f"}} forms a contiguous trail (K={head[0]}, "
                  f"|E|={head[1]})")


class LatticeSearch:
    """Facade tying one :class:`Synthesizer` to the lattice engine.

    Owns the walker, the uniform assumption short-circuits, the work
    unit partitioning and the supervised dispatch; verdict strings are
    byte-identical to :meth:`Synthesizer._kernel_verdict` by
    construction (the differential suite pins this).
    """

    def __init__(self, synthesizer: "Synthesizer") -> None:
        self.synthesizer = synthesizer
        self.protocol = synthesizer.protocol
        self.kernel = synthesizer._kernel
        self.base_transitions = synthesizer._base_transitions
        self.base_deadlocks = synthesizer._base_deadlocks
        self.max_ring_size = synthesizer.max_ring_size
        self.stats = synthesizer.stats
        self.jobs = synthesizer.jobs
        self.policy = synthesizer.policy
        self.journal = synthesizer.journal
        self.schedule = synthesizer.schedule
        self.batch_size = synthesizer.batch_size
        self.fault_plan = getattr(synthesizer, "fault_plan", None)
        self._name = f"{self.protocol.name}_ss"
        self._base_cyclic = has_cycle(
            local_transition_graph(self.base_transitions))
        self._base_self_enabling = any(
            t.target not in self.base_deadlocks
            for t in self.base_transitions)
        self._uniform_memo: dict[frozenset, Any] = {}
        self._counts: dict[str, int | float] = \
            {name: 0 for name in COUNTER_NAMES}
        self._board = None
        if self.journal is not None:
            self._board = PruneBoard(
                Path(self.journal.directory) / "prunes.jsonl")
        self._walker = LatticeWalker(
            self.kernel, self.base_transitions, self.max_ring_size,
            self._counts, publishing=self._board is not None)

    # -- uniform short-circuits ----------------------------------------
    def _uniform_reason(self, combos: Sequence[tuple]) -> Any:
        """A reason shared by the whole batch, ``None`` when the lattice
        must walk, or :data:`_INVALID_POOL` when the candidate-pool
        invariants do not hold and flat evaluation must take over.

        Candidate targets are merged-LTG sinks (base local deadlocks
        outside the source set), so for full combinations Assumption 1
        reduces to the base graph's cyclicity and Assumption 2 to a
        base-only scan — both independent of which candidates were
        picked, with the exact flat reason strings.
        """
        if not self.protocol.unidirectional \
                and not self.synthesizer.accept_contiguous_only:
            return _BIDIRECTIONAL_REASON
        sources = frozenset(t.source for t in combos[0])
        cached = self._uniform_memo.get(sources)
        arcs = {t for combo in combos for t in combo}
        for combo in combos:
            if len(combo) != len(sources) \
                    or {t.source for t in combo} != sources:
                return _INVALID_POOL
        for arc in arcs:
            if arc.target not in self.base_deadlocks \
                    or arc.target in sources or arc.source not in sources:
                return _INVALID_POOL
        if cached is not None:
            return cached[0]
        if self._base_cyclic:
            reason = (f"protocol {self._name!r} is not self-terminating "
                      f"(Assumption 1)")
        elif self._base_self_enabling or any(
                t.target in sources for t in self.base_transitions):
            reason = (f"protocol {self._name!r} has self-enabling local "
                      f"transitions (Assumption 2); apply "
                      f"make_self_disabling() first")
        else:
            reason = None
        self._uniform_memo[sources] = (reason,)
        return reason

    # -- work units ----------------------------------------------------
    def _plan_units(self, combos: Sequence[tuple]) -> list[tuple[int, int]]:
        """Contiguous subtree ranges: group by deepening arc prefixes
        until there are enough units to keep every worker fed."""
        if len(combos) <= 1:
            return [(0, len(combos))]
        target = min(len(combos), max(4 * max(self.jobs, 1), 4))
        width = len(combos[0])
        ranges = [(0, len(combos))]
        for depth in range(1, width + 1):
            cuts = [0]
            for i in range(1, len(combos)):
                if combos[i][:depth] != combos[i - 1][:depth]:
                    cuts.append(i)
            cuts.append(len(combos))
            ranges = list(zip(cuts, cuts[1:]))
            if len(ranges) >= target:
                break
        return ranges

    def _unit_key(self, unit: Sequence[tuple]) -> str:
        walker = self._walker
        payload = [[list(walker._pair(t)) for t in combo] for combo in unit]
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()
        return analysis_key(
            "synthsearch-unit", self.protocol,
            max_ring_size=self.max_ring_size,
            accept_contiguous_only=self.synthesizer.accept_contiguous_only,
            unit=digest)

    def _prewarm(self) -> None:
        """Build the root checkpoint in-parent so forked workers
        inherit it hot instead of re-deriving it per unit."""
        self._walker.ensure_root()

    def _fold(self, delta: dict[str, Any] | None) -> None:
        if not delta:
            return
        stats = self.stats
        for name, value in delta.items():
            if name not in COUNTER_NAMES or not value:
                continue
            setattr(stats, name, getattr(stats, name) + value)
            obs.metric(f"synthsearch.{name}", value)

    # -- entry points --------------------------------------------------
    def evaluate_unit(self, combos: Sequence[tuple]) -> tuple:
        """One work unit: absorb the prune board, walk the unit's
        combinations, publish new trail results.  Returns
        ``(reasons, counter_delta)`` — both JSON/pickle-safe, so the
        journal can replay the unit (verdicts *and* counters) on
        resume."""
        counts = self._counts
        before = dict(counts)
        if self._board is not None:
            entries = self._board.load_new()
            if entries:
                self._walker.absorb(entries)
                counts["board_loaded"] += len(entries)
                obs.event("prune-broadcast", entries=len(entries),
                          source="load")
        reasons = self._walker.verdicts([tuple(c) for c in combos])
        if self._board is not None:
            published = self._board.publish(self._walker.take_unpublished())
            if published:
                counts["board_published"] += published
                obs.event("prune-broadcast", entries=published,
                          source="publish")
        delta = {name: counts[name] - before.get(name, 0)
                 for name in COUNTER_NAMES if counts[name] != before.get(name, 0)}
        return reasons, delta

    def verdicts(self, combos: Sequence[tuple]) -> list[str | None]:
        """Lattice verdicts for *combos* (the pending subset of one
        deterministic enumeration), dispatching subtree work units
        through the supervisor when parallel or supervised."""
        synthesizer = self.synthesizer
        uniform = self._uniform_reason(combos)
        if uniform is _INVALID_POOL:
            return [synthesizer._evaluate_verdict(combo)
                    for combo in combos]
        if uniform is not None:
            self._fold({"combos_pruned": len(combos)})
            return [uniform] * len(combos)
        units = self._plan_units(combos)
        supervised = (self.policy is not None or self.journal is not None
                      or self.fault_plan is not None
                      or self.schedule == "batch")
        if supervised or (self.jobs > 1 and len(units) > 1):
            items = [combos[start:end] for start, end in units]
            keys = ([self._unit_key(item) for item in items]
                    if self.journal is not None else None)
            results = supervise_work_items(
                _lattice_unit_worker, items, jobs=self.jobs,
                context=synthesizer, stats=self.stats,
                policy=self.policy, journal=self.journal, keys=keys,
                fallback_worker=_lattice_unit_worker,
                plan=self.fault_plan,
                schedule=self.schedule, batch_size=self.batch_size,
                prewarm=self._prewarm)
            reasons: list[str | None] = []
            for unit_reasons, delta in results:
                self._fold(delta)
                reasons.extend(unit_reasons)
            return reasons
        unit_reasons, delta = self.evaluate_unit(combos)
        self._fold(delta)
        return unit_reasons
