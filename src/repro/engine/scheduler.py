"""Adaptive batch scheduling over persistent supervised workers.

The compiled kernels drove per-task cost down to fractions of a
millisecond, at which point the task-mode supervisor's fork-per-attempt
dispatch (one ``fork``, one pipe round-trip, one fsync per task)
dominates wall-clock.  :class:`BatchScheduler` amortizes that overhead:
it forks ``--jobs`` **persistent workers once**, then feeds each worker
**batches** of task indices sized by a :class:`CostModel` so one pipe
round-trip covers ~:data:`TARGET_BATCH_SECONDS` of useful work.

Supervision stays at *task* granularity despite the batched transport:

* every worker announces each task with a ``start`` message before
  touching it — the heartbeat that arms the per-task timeout deadline
  in the parent, exactly as precise as task mode's fork-time clock;
* a worker death (segfault, OOM kill, injected SIGKILL) fails **only
  the in-flight task** — that task re-enters the retry/backoff/degrade
  ladder, while the not-yet-started remainder of the dead worker's
  batch is **requeued without spending retry budget** (those tasks were
  innocent bystanders, and charging them attempts would make batch
  verdicts diverge from task mode under ``retries=0``);
* deterministic worker exceptions latch into the shared
  :class:`~repro.engine.supervisor.TaskLedger` and re-raise with the
  remote traceback after in-flight work is stopped, and journal
  checkpoints run under :meth:`RunJournal.group_commit` so completing a
  batch costs ~one fsync instead of one per task.

The cost model is deliberately boring: an exponentially weighted moving
average of observed per-task seconds (seeded from the ambient obs run's
``scheduler.task_seconds`` histogram when a prior stage already
measured this workload), clamped so a batch targets
:data:`TARGET_BATCH_SECONDS` of work.  Near the end of a run the fair-
share cap ``ceil(remaining / workers / 2)`` overrides it, splitting the
tail across workers instead of letting one worker hoard the last big
batch while its siblings idle — each cap hit is counted as a *steal*
(``scheduler.steals``), the work-stealing this design gets without a
shared-memory deque.

Workers inherit everything by fork — including kernels compiled by the
parent's ``prewarm`` hook — so unpicklable workers/contexts/items are
fine and nothing is recompiled per task; only results cross the pipe.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Sequence

import repro.engine.artifacts as artifact_plane
from repro.engine.pool import PortableContext, WorkerFailure
from repro.engine.supervisor import FaultPlan, TaskLedger, _bump, _Task
from repro.obs import live
from repro.obs import runtime as obs
from repro.obs.metrics import Histogram
from repro.obs.trace import Span

#: How much useful work one batch dispatch should cover.  Well above
#: the ~0.1 ms cost of a pipe round-trip (so dispatch overhead is
#: amortized to noise) and well below any sane ``--timeout`` (so a
#: batch never delays fault detection noticeably).
TARGET_BATCH_SECONDS = 0.1

#: Hard ceiling on one batch regardless of how cheap tasks look — a
#: mis-estimated EWMA must not assign half the run to one worker.
MAX_BATCH_ITEMS = 256

#: Weight of the newest sample in the per-task-seconds EWMA.  High
#: enough to adapt within a few batches when per-K cost grows along a
#: sweep, low enough not to chase single-task noise.
EWMA_ALPHA = 0.25

#: Samples below this are clamped before sizing (a 0-second clock tick
#: must not produce a huge batch).
MIN_TASK_SECONDS = 1e-6


@dataclass
class CostModel:
    """Adaptive batch sizing from observed per-task durations.

    ``fixed`` (the CLI's ``--batch-size``) bypasses adaptation.
    Otherwise the first dispatch to each worker is a **probe** of one
    task (no estimate yet → smallest possible commitment), and every
    completed task updates the EWMA that sizes subsequent batches to
    :data:`TARGET_BATCH_SECONDS` of estimated work.
    """

    fixed: int | None = None
    ewma: float | None = None
    target_seconds: float = TARGET_BATCH_SECONDS
    max_items: int = MAX_BATCH_ITEMS

    def __post_init__(self) -> None:
        if self.fixed is not None and self.fixed < 1:
            raise ValueError("batch size must be >= 1")

    @classmethod
    def from_ambient(cls, fixed: int | None = None) -> "CostModel":
        """Seed the EWMA from the ambient run's task-duration histogram
        (a resumed or multi-stage run already knows this workload)."""
        model = cls(fixed=fixed)
        run = obs.active()
        if run is not None and "scheduler.task_seconds" in run.metrics:
            sample = run.metrics.histogram("scheduler.task_seconds")
            if sample.count:
                model.ewma = max(sample.mean, MIN_TASK_SECONDS)
        return model

    def observe(self, seconds: float) -> None:
        seconds = max(seconds, MIN_TASK_SECONDS)
        if self.ewma is None:
            self.ewma = seconds
        else:
            self.ewma = (EWMA_ALPHA * seconds
                         + (1.0 - EWMA_ALPHA) * self.ewma)

    def batch_size(self, remaining: int,
                   workers: int) -> tuple[int, bool]:
        """Size the next batch; returns ``(size, tail_limited)``.

        *tail_limited* reports that the fair-share tail cap — not the
        cost model — bounded the batch: the caller counts it as a
        steal when other workers are still busy.
        """
        if remaining <= 0:
            return 0, False
        if self.fixed is not None:
            return min(self.fixed, remaining), False
        if self.ewma is None:
            return 1, False  # probe: measure before committing
        size = int(round(self.target_seconds / self.ewma))
        size = max(1, min(size, self.max_items, remaining))
        fair = max(1, math.ceil(remaining / max(1, workers) / 2))
        if size > fair:
            return fair, True
        return size, False


# ----------------------------------------------------------------------
# child side: the persistent worker loop
# ----------------------------------------------------------------------
def _worker_main(worker, context, work: Sequence[Any],
                 plan: FaultPlan | None, commands, results) -> None:
    """Pull batches of ``(index, attempt)`` pairs until told to stop.

    Per task: announce ``("start", index)`` (the heartbeat that arms
    the parent-side deadline), run it, ship ``("done", index, outcome,
    capture)``; after a whole batch, ``("idle",)`` asks for more.
    ``None`` on the command pipe — or a vanished parent — ends the
    loop.  Fault injection happens *after* the start heartbeat, like
    task mode's fork-then-crash ordering, so the parent attributes the
    death to the right task.
    """
    while True:
        try:
            batch = commands.recv()
        except (EOFError, OSError):
            break
        if batch is None:
            break
        for index, attempt in batch:
            try:
                results.send(("start", index, None, None))
            except Exception:
                os._exit(1)
            fault = (plan.child_fault(index, attempt)
                     if plan is not None else None)
            if fault == "crash":
                os.kill(os.getpid(), signal.SIGKILL)
            if fault == "hang":
                time.sleep(plan.hang_seconds)
            if plan is not None:
                plan.child_delay()
            inherited = obs.fork_capture_begin()
            try:
                try:
                    outcome: Any = ("ok", worker(context, work[index]))
                except BaseException as exc:
                    outcome = ("failed", WorkerFailure.capture(exc))
            finally:
                capture = obs.fork_capture_end(inherited)
            try:
                results.send(("done", index, outcome, capture))
            except Exception as exc:
                # Unpicklable result: report it as such so the parent
                # degrades this task rather than suspecting a crash.
                try:
                    results.send((
                        "done", index,
                        ("unpicklable",
                         f"{type(exc).__name__}: {exc}"), None))
                except Exception:
                    os._exit(1)
        try:
            results.send(("idle", None, None, None))
        except Exception:
            os._exit(1)
    os._exit(0)


def _spawn_worker_main(worker, portable: PortableContext | None,
                       work: Sequence[Any], plan: FaultPlan | None,
                       commands, results,
                       artifact_spec: tuple[str, str] | None) -> None:
    """Spawn-mode bootstrap around :func:`_worker_main`.

    A spawned worker inherits nothing, so this re-creates what fork
    would have provided: the ambient artifact store (compiled kernels
    and packed spaces attach by fingerprint — the spawn counterpart of
    the parent-side ``prewarm`` + fork inheritance), an observability
    run so per-task captures ship back, and the worker context rebuilt
    from its portable recipe.
    """
    artifact_plane.activate_from_spec(artifact_spec)
    if obs.active() is None:
        obs.start("spawn-worker")
    context = portable.build() if portable is not None else None
    _worker_main(worker, context, work, plan, commands, results)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Parent-side state of one persistent worker process."""

    ident: int
    process: Any
    commands: Any  # parent → child: batches of (index, attempt)
    results: Any   # child → parent: start / done / idle
    assigned: deque = field(default_factory=deque)  # sent, not started
    current: _Task | None = None                    # heartbeat received
    deadline: float | None = None
    started_at: float = 0.0
    batch_began: float = 0.0        # wall clock, for the batch span
    batch_items: int = 0
    idle: bool = True

    @property
    def busy(self) -> bool:
        return not self.idle

    def casualty(self) -> _Task | None:
        """The task a death should be charged to: the heartbeat-
        confirmed one, else the first assigned (a worker that died
        before its first heartbeat was necessarily on that task)."""
        if self.current is not None:
            task, self.current = self.current, None
            return task
        if self.assigned:
            return self.assigned.popleft()
        return None


class BatchScheduler:
    """Batch-mode execution strategy over a shared
    :class:`~repro.engine.supervisor.TaskLedger` (see module docstring;
    task-mode semantics, batched transport)."""

    def __init__(self, ledger: TaskLedger, jobs: int = 1,
                 batch_size: int | None = None,
                 start_method: str = "fork",
                 portable: PortableContext | None = None) -> None:
        if start_method not in ("fork", "spawn"):
            raise ValueError(f"unknown start method {start_method!r}")
        self.ledger = ledger
        self.jobs = max(1, jobs)
        self.policy = ledger.policy
        self.model = CostModel.from_ambient(fixed=batch_size)
        self.start_method = start_method
        self.portable = portable
        self._mp = multiprocessing.get_context(start_method)
        self.workers: list[_Worker] = []
        self.queue: deque = deque()      # ready tasks, FIFO
        self.delayed: list[_Task] = []   # retries waiting out backoff
        self._next_ident = 0
        # Local (not ambient) so stall detection works without --trace.
        self.durations = Histogram("scheduler.task_seconds")

    # -- lifecycle -----------------------------------------------------
    def run(self, pending: list[_Task]) -> None:
        ledger = self.ledger
        self.queue = deque(pending)
        self.delayed = []
        target = min(self.jobs, max(1, len(pending)))
        if ledger.stats is not None and target > 1:
            ledger.stats.parallel = True
        commit = (ledger.journal.group_commit()
                  if ledger.journal is not None else nullcontext())
        with obs.span("scheduler.map", mode="batch", jobs=self.jobs,
                      method=self.start_method, items=len(pending),
                      timeout=self.policy.timeout,
                      retries=self.policy.retries):
            with commit:
                try:
                    self._loop(target)
                finally:
                    self._shutdown()

    def _loop(self, target: int) -> None:
        ledger = self.ledger
        while ledger.failure is None and (
                self.queue or self.delayed
                or any(w.busy for w in self.workers)):
            now = time.monotonic()
            self._mature(now)
            self._dispatch(target)
            if not self.workers:
                # Every worker died and nothing could be respawned
                # (queue drained into `delayed` backoffs): sleep to the
                # first retry and go around.
                if self.delayed:
                    wake = min(t.ready_at for t in self.delayed)
                    time.sleep(max(0.0, min(wake - now, 0.25)))
                continue
            ready = multiprocessing.connection.wait(
                [w.results for w in self.workers]
                + [w.process.sentinel for w in self.workers],
                timeout=self._wait_timeout(now))
            self._service(set(ready))
            live.tick(self._live_payload)

    def _mature(self, now: float) -> None:
        """Move backoff-expired retries back into the ready queue."""
        if not self.delayed:
            return
        still: list[_Task] = []
        for task in self.delayed:
            if task.ready_at <= now:
                self.queue.append(task)
            else:
                still.append(task)
        self.delayed = still

    # -- dispatch ------------------------------------------------------
    def _spawn(self) -> _Worker:
        ledger = self.ledger
        cmd_recv, cmd_send = self._mp.Pipe(duplex=False)
        res_recv, res_send = self._mp.Pipe(duplex=False)
        if self.start_method == "fork":
            process = self._mp.Process(
                target=_worker_main,
                args=(ledger.worker, ledger.context, ledger.work,
                      ledger.plan, cmd_recv, res_send),
                daemon=True)
        else:
            store = artifact_plane.ambient()
            process = self._mp.Process(
                target=_spawn_worker_main,
                args=(ledger.worker, self.portable, ledger.work,
                      ledger.plan, cmd_recv, res_send,
                      store.spec() if store is not None else None),
                daemon=True)
        process.start()
        cmd_recv.close()  # child ends live in the child
        res_send.close()
        worker = _Worker(ident=self._next_ident, process=process,
                         commands=cmd_send, results=res_recv)
        self._next_ident += 1
        self.workers.append(worker)
        obs.gauge("scheduler.workers", len(self.workers))
        return worker

    def _dispatch(self, target: int) -> None:
        """Feed every idle worker a batch while ready tasks remain."""
        while self.queue:
            worker = next((w for w in self.workers if w.idle), None)
            if worker is None:
                if len(self.workers) >= target:
                    return
                worker = self._spawn()
            size, tail_limited = self.model.batch_size(
                len(self.queue), max(1, len(self.workers)))
            batch = [self.queue.popleft() for _ in range(size)]
            try:
                worker.commands.send(
                    [(t.index, t.attempts) for t in batch])
            except (BrokenPipeError, OSError):
                # Found dead at dispatch time: nothing of this batch
                # was in flight, so all of it goes back untouched.
                self.queue.extendleft(reversed(batch))
                self._worker_died(worker, drain=False)
                continue
            worker.assigned = deque(batch)
            worker.idle = False
            worker.batch_began = time.time()
            worker.batch_items = len(batch)
            _bump(self.ledger.stats, "scheduler_batches",
                  "scheduler.batches")
            _bump(self.ledger.stats, "scheduler_batch_items",
                  "scheduler.batch_items", len(batch))
            obs.observe("scheduler.batch_size", len(batch))
            if tail_limited and any(w.busy for w in self.workers
                                    if w is not worker):
                # The fair-share tail cap bound this batch: work that
                # the cost model would have assigned elsewhere was
                # effectively stolen for this worker.
                _bump(self.ledger.stats, "scheduler_steals",
                      "scheduler.steals")

    # -- servicing -----------------------------------------------------
    def _service(self, ready: set) -> None:
        now = time.monotonic()
        for worker in list(self.workers):
            # Drain buffered messages first: a dead worker's pipe may
            # still hold completed results, and a readable sentinel
            # must not outrank them.
            try:
                while worker.results.poll():
                    self._handle(worker, worker.results.recv())
            except (EOFError, OSError):
                self._worker_died(worker)
                continue
            if not worker.process.is_alive():
                if worker.busy:
                    self._worker_died(worker)
                else:
                    self._discard(worker)
            elif worker.deadline is not None and now >= worker.deadline:
                self._expire(worker)

    def _handle(self, worker: _Worker, message: tuple) -> None:
        kind, index, payload, capture = message
        ledger = self.ledger
        if kind == "start":
            task = worker.assigned.popleft()
            assert task.index == index, "worker ran out of order"
            worker.current = task
            worker.started_at = time.monotonic()
            worker.deadline = (worker.started_at + self.policy.timeout
                               if self.policy.timeout is not None
                               else None)
        elif kind == "done":
            task = worker.current
            worker.current = None
            worker.deadline = None
            assert task is not None and task.index == index
            elapsed = time.monotonic() - worker.started_at
            self.model.observe(elapsed)
            self.durations.observe(elapsed)
            obs.observe("scheduler.task_seconds", elapsed)
            obs.adopt_child(capture, f"item[{task.index}]",
                            attempt=task.attempts)
            status, value = payload
            if status == "ok":
                ledger.complete(task, value)
            elif status == "failed":
                ledger.record_failure(task, value)
            else:  # unpicklable result
                ledger.degrade(task, f"unpicklable-result ({value})")
        else:  # idle: batch finished, synthesize its span
            worker.idle = True
            run = obs.active()
            if run is not None and worker.batch_items:
                span = Span("scheduler.batch",
                            {"worker": worker.ident,
                             "items": worker.batch_items},
                            start=worker.batch_began,
                            duration=time.time() - worker.batch_began,
                            pid=worker.process.pid)
                run.tracer.adopt([span])
            worker.batch_items = 0

    # -- fault handling ------------------------------------------------
    def _retry(self, task: _Task, reason: str) -> None:
        requeued = self.ledger.retry_or_degrade(task, reason)
        if requeued is not None:
            self.delayed.append(requeued)

    def _requeue_survivors(self, worker: _Worker) -> None:
        """Return a dead/killed worker's unstarted tasks to the queue —
        front of the line, attempts untouched: they were never run."""
        if not worker.assigned:
            return
        count = len(worker.assigned)
        self.queue.extendleft(reversed(worker.assigned))
        worker.assigned = deque()
        _bump(self.ledger.stats, "scheduler_requeued",
              "scheduler.requeued", count)
        live.note(requeued=count)
        obs.event("batch-requeued", level="warning",
                  worker=worker.ident, items=count)

    def _worker_died(self, worker: _Worker, drain: bool = True) -> None:
        if drain:
            try:
                while worker.results.poll():
                    self._handle(worker, worker.results.recv())
            except (EOFError, OSError):
                pass
        self._discard(worker)
        casualty = worker.casualty()
        self._requeue_survivors(worker)
        if casualty is not None:
            self._retry(casualty, "worker-died")

    def _expire(self, worker: _Worker) -> None:
        """Per-task deadline passed: kill the worker, retry the task."""
        task = worker.current
        worker.current = None
        try:
            worker.process.kill()
        except Exception:
            pass
        self._discard(worker)
        assert task is not None  # deadlines are only armed by a start
        obs.event("task-timeout", level="warning", index=task.index,
                  key=task.key, attempt=task.attempts,
                  timeout_seconds=self.policy.timeout)
        _bump(self.ledger.stats, "supervisor_timeouts",
              "supervisor.timeouts")
        self._requeue_survivors(worker)
        self._retry(task, "timeout")

    def _discard(self, worker: _Worker) -> None:
        if worker in self.workers:
            self.workers.remove(worker)
        obs.gauge("scheduler.workers", len(self.workers))
        for conn in (worker.commands, worker.results):
            try:
                conn.close()
            except Exception:
                pass
        worker.process.join(timeout=5.0)

    def _shutdown(self) -> None:
        for worker in list(self.workers):
            if worker.busy:
                # Mid-batch at shutdown means the run is aborting (a
                # latched failure): no point waiting the batch out.
                try:
                    worker.process.kill()
                except Exception:
                    pass
            else:
                try:
                    worker.commands.send(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 1.0
        for worker in list(self.workers):
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                try:
                    worker.process.kill()
                except Exception:
                    pass
            self._discard(worker)

    # -- live telemetry ------------------------------------------------
    def _live_payload(self) -> dict[str, Any]:
        """Extra snapshot fields for the live plane (built only when a
        snapshot is actually due — see :func:`repro.obs.live.tick`)."""
        now = time.monotonic()
        p95 = self.durations.quantile(0.95)
        threshold = live.stall_threshold(p95)
        workers = []
        in_flight = 0
        assigned = 0
        for worker in self.workers:
            entry: dict[str, Any] = {"ident": worker.ident,
                                     "pid": worker.process.pid,
                                     "busy": worker.busy}
            assigned += len(worker.assigned)
            if worker.current is not None:
                in_flight += 1
                age = now - worker.started_at
                entry.update(task=worker.current.index,
                             age_seconds=round(age, 3),
                             stalled=age > threshold)
            workers.append(entry)
        remaining = (len(self.queue) + len(self.delayed)
                     + assigned + in_flight)
        stage: dict[str, Any] = {"mode": "batch"}
        if self.model.ewma is not None:
            stage["ewma_task_seconds"] = self.model.ewma
            stage["eta_seconds"] = round(
                remaining * self.model.ewma
                / max(1, len(self.workers) or self.jobs), 3)
        if p95 is not None:
            stage["p95_task_seconds"] = p95
        payload = {"workers": workers, "stage": stage,
                   "tasks": {"in_flight": in_flight + assigned}}
        payload.update(live.cache_payload(self.ledger.stats))
        return payload

    # -- pacing --------------------------------------------------------
    def _wait_timeout(self, now: float) -> float:
        horizon = 0.5
        deadlines = [w.deadline for w in self.workers
                     if w.deadline is not None]
        if deadlines:
            horizon = min(horizon, max(0.0, min(deadlines) - now))
        if self.delayed:
            wake = min(t.ready_at for t in self.delayed)
            if wake > now:
                horizon = min(horizon, wake - now)
        return max(horizon, 0.005)
