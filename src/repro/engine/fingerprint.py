"""Content-addressed protocol and analysis fingerprints.

A fingerprint must identify a protocol by *what it computes*, not by how
it was written down: two protocols with the same local state space,
transition set and legitimacy predicate are interchangeable for every
analysis in this repository.  :func:`repro.serialization
.protocol_structure_dict` provides exactly that canonical structural
description (it enumerates the local state space, so callable-based
protocols fingerprint just as well as DSL ones); this module hashes it.

:func:`analysis_key` extends the protocol fingerprint with the analysis
kind and its parameters, yielding the cache key used by
:class:`repro.engine.cache.ResultCache` — mutating an action, the
invariant, or any analysis parameter changes the key and forces a miss.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.serialization import protocol_structure_dict


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def protocol_fingerprint(protocol) -> str:
    """A stable hex digest of the protocol's canonical structure."""
    return _digest(protocol_structure_dict(protocol))


def analysis_key(kind: str, protocol, **params: Any) -> str:
    """The cache key for running analysis *kind* on *protocol*.

    *params* must be the complete set of verdict-affecting parameters;
    anything omitted here could alias two different results under one
    key.  Values only need a stable ``repr`` (plain ints/bools/strings
    in practice).
    """
    return _digest({
        "kind": kind,
        "protocol": protocol_fingerprint(protocol),
        "params": params,
    })
