"""Compiled bit-packed state-space kernel for symmetric ring instances.

The naive global checker (:class:`repro.checker.statespace.StateGraph`
over :class:`repro.protocol.instance.RingInstance`) interprets the
protocol per state: every state visit constructs ``K`` frozen
:class:`LocalState` dataclasses, re-evaluates every guard callable and
hashes tuple-keyed dicts.  For the per-K baseline of benchmark X2 that
interpretation overhead *is* the cost — and it undersells what a tuned
explicit-state engine can do.  This module removes it in three steps:

1. **Compilation** (:func:`compile_protocol`, once per protocol,
   K-independent).  Every local window valuation is enumerated once;
   guards and effects run once per window; the result is a flat table
   ``window index -> tuple of successor own-cell indices`` plus a
   per-window legitimacy bytearray.  No guard is ever evaluated again.

2. **Packed enumeration** (:func:`build_full`, per K).  A global state
   is a base-``|C|`` packed integer — digit ``r`` (most significant
   first) is the cell index of process ``r`` — so the state's *index*
   in enumeration order equals its code and interning dicts disappear.
   The single enumeration pass walks an odometer over the digits,
   computes each process's window index by integer arithmetic, and
   emits adjacency in CSR form (two flat ``array('q')`` buffers) with
   invariant membership in a bytearray.  Successor codes come from
   ``code + (cell' - cell) * |C|^(K-1-r)`` — no tuples are built.
   Distinct moves always produce distinct codes (two processes write
   different digit positions; a move must change its own digit), so
   the per-state successor segment needs no dedup and matches the
   naive backend's ordering exactly.

3. **Rotation quotient** (:func:`build_quotient`, opt-in).  All ``K``
   processes of a :class:`RingInstance` are instantiated from the same
   template and the invariant is the conjunction of the same local
   predicate at every position, so the cyclic rotation
   ``rho(c_0 .. c_{K-1}) = (c_1 .. c_{K-1}, c_0)`` is an automorphism
   of the transition graph that preserves ``I(K)`` membership.  On
   packed codes a left-rotation is one divmod:
   ``rho(code) = (code % |C|^(K-1)) * |C| + code // |C|^(K-1)``.
   The quotient keeps one canonical (minimal-code) representative per
   rotation orbit — a ~K-fold reduction — and maps successors through
   the canonicalization.  Because rotations are automorphisms, the
   quotient preserves deadlock existence, livelock/SCC existence,
   closure, weak convergence and BFS distances to the invariant, hence
   every convergence *verdict*; state/witness *counts* refer to orbits
   (each reported state is still a genuine global state, but a cycle of
   representatives witnesses a global livelock only up to rotation).

The kernel applies to symmetric rings only — exactly
:class:`RingInstance` (Dijkstra's token ring has a distinguished root
and stays on the naive backend).
"""

from __future__ import annotations

import time
import weakref
from array import array
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Iterator

import repro.engine.artifacts as artifact_plane
from repro.obs import runtime as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.instance import RingInstance
    from repro.protocol.ring import RingProtocol


def _protocol_fingerprint(protocol: "RingProtocol") -> str:
    # Deferred import: fingerprint -> serialization -> protocol layers.
    from repro.engine.fingerprint import protocol_fingerprint

    return protocol_fingerprint(protocol)


# ----------------------------------------------------------------------
# Per-protocol compilation (K-independent)
# ----------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class CompiledProtocol:
    """The flat local-transition table of one protocol.

    The table is stored CSR-style in flat buffers so one artifact file
    can back it zero-copy: ``targets_flat[targets_off[w] :
    targets_off[w + 1]]`` holds the successor *own-cell indices* of
    window valuation ``w`` (guard-true, own-cell-changing writes only,
    in action order, first occurrence kept); ``legit[w]`` is the
    ``LC_r`` bit.  Window valuations are indexed
    ``sum(cell_index[i] * |C|^i)`` over window positions ``i``
    (leftmost read first).  The buffers are heap ``array('q')`` /
    ``bytes`` when freshly compiled and typed mmap ``memoryview``
    sections when attached from the artifact store — both sides of the
    interface index identically.
    """

    cells: tuple
    reads_left: int
    reads_right: int
    targets_off: "array | memoryview"
    targets_flat: "array | memoryview"
    legit: "bytes | memoryview"
    compile_seconds: float
    attached: bool = False

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    @property
    def window_width(self) -> int:
        return self.reads_left + self.reads_right + 1

    @property
    def window_count(self) -> int:
        return len(self.legit)

    @cached_property
    def target_rows(self) -> tuple[tuple[int, ...], ...]:
        """The per-window successor rows, materialized as tuples.

        The per-K enumeration loops index one row per (state, process)
        pair; a tuple lookup there beats two CSR offset reads, so the
        builders materialize this view once per build.  Works for heap
        arrays and mmap views alike (and is cached on the instance).
        """
        off, flat = self.targets_off, self.targets_flat
        return tuple(tuple(flat[off[w]:off[w + 1]])
                     for w in range(self.window_count))


_COMPILE_CACHE: "weakref.WeakKeyDictionary[RingProtocol, CompiledProtocol]" \
    = weakref.WeakKeyDictionary()


def _attach_compiled(protocol: "RingProtocol") -> CompiledProtocol | None:
    """Attach a compiled table from the ambient artifact store."""
    store = artifact_plane.ambient()
    if store is None:
        return None
    fingerprint = _protocol_fingerprint(protocol)
    attached = store.attach("kernel", fingerprint)
    if attached is None:
        return None
    space = protocol.space
    cells = space.cells
    width = space.process.window_width
    try:
        meta = attached.ints("meta")
        reads_left, reads_right, cell_count, windows = meta[:4]
        legit = attached.view("legit", "B")
        targets_off = attached.ints("targets_off")
        targets_flat = attached.ints("targets_flat")
        if (cell_count != len(cells)
                or reads_left != space.process.reads_left
                or reads_right != space.process.reads_right
                or windows != len(cells) ** width
                or len(legit) != windows
                or len(targets_off) != windows + 1):
            raise artifact_plane.ArtifactFormatError(
                "compiled-kernel sections disagree with the protocol")
    except artifact_plane.ArtifactFormatError as exc:
        # The checksum was fine but the content contradicts the live
        # protocol — treat like corruption: drop and rebuild.
        store.stats.corrupt += 1
        obs.metric("artifacts.corrupt")
        obs.event("artifact-corrupt", level="warning",
                  artifact="kernel", path=str(attached.path), reason=str(exc))
        attached.close()
        try:
            attached.path.unlink()
        except OSError:
            pass
        return None
    return CompiledProtocol(
        cells=cells,
        reads_left=int(reads_left),
        reads_right=int(reads_right),
        targets_off=targets_off,
        targets_flat=targets_flat,
        legit=legit,
        compile_seconds=0.0,
        attached=True,
    )


def _publish_compiled(protocol: "RingProtocol",
                      compiled: CompiledProtocol) -> None:
    store = artifact_plane.ambient()
    if store is None or store.mode == "ro":
        return
    meta = array("q", [compiled.reads_left, compiled.reads_right,
                       compiled.cell_count, compiled.window_count])
    store.publish("kernel", _protocol_fingerprint(protocol), {
        "meta": ("q", meta.tobytes()),
        "targets_off": ("q", bytes(compiled.targets_off)
                        if isinstance(compiled.targets_off, memoryview)
                        else compiled.targets_off.tobytes()),
        "targets_flat": ("q", bytes(compiled.targets_flat)
                         if isinstance(compiled.targets_flat, memoryview)
                         else compiled.targets_flat.tobytes()),
        "legit": ("B", bytes(compiled.legit)),
    })


def compile_protocol(protocol: "RingProtocol") -> CompiledProtocol:
    """Compile (and memoize) *protocol*'s guarded commands.

    Guards and effects execute once per local window valuation —
    ``|C|^w`` evaluations total, independent of any ring size.  With an
    ambient artifact store the table is first attached by fingerprint
    (zero guard evaluations, zero copies) and published after a fresh
    compile so later runs and spawned workers skip the work.
    """
    cached = _COMPILE_CACHE.get(protocol)
    if cached is not None:
        obs.metric("kernel.compile_memo_hits")
        return cached
    attached = _attach_compiled(protocol)
    if attached is not None:
        _COMPILE_CACHE[protocol] = attached
        return attached
    began = time.perf_counter()
    obs.metric("kernel.compiles")
    with obs.span("kernel.compile",
                  protocol=getattr(protocol, "name", "?")) as span:
        space = protocol.space
        cells = space.cells
        cell_index = {cell: i for i, cell in enumerate(cells)}
        # space.states enumerates windows with the *leftmost* read varying
        # slowest, i.e. window index sum(cell_index[i] * |C|^(w-1-i)); we
        # re-index to sum(cell_index[i] * |C|^i) so the enumeration below
        # can stay oblivious to the ordering convention.
        width = space.process.window_width
        count = len(cells) ** width
        rows: list[tuple[int, ...]] = [()] * count
        legit = bytearray(count)
        for state in space.states:
            index = 0
            for position, cell in enumerate(state.cells):
                index += cell_index[cell] * len(cells) ** position
            own: list[int] = []
            for action in space.enabled_actions(state):
                for target in space.targets(state, action):
                    candidate = cell_index[target.own]
                    if candidate not in own:
                        own.append(candidate)
            rows[index] = tuple(own)
            legit[index] = 1 if protocol.is_legitimate(state) else 0
        if span is not None:
            span.attrs["windows"] = count
    targets_off = array("q", bytes(8 * (count + 1)))
    targets_flat = array("q")
    for index, row in enumerate(rows):
        targets_flat.extend(row)
        targets_off[index + 1] = len(targets_flat)
    compiled = CompiledProtocol(
        cells=cells,
        reads_left=space.process.reads_left,
        reads_right=space.process.reads_right,
        targets_off=targets_off,
        targets_flat=targets_flat,
        legit=bytes(legit),
        compile_seconds=time.perf_counter() - began,
    )
    _COMPILE_CACHE[protocol] = compiled
    _publish_compiled(protocol, compiled)
    return compiled


def supports_kernel(instance: object) -> bool:
    """Whether *instance* is a symmetric ring the kernel can encode.

    Strict type check on purpose: duck-typed instances (Dijkstra's
    token ring, subclasses with overridden semantics) keep the naive
    interpreter, which follows their Python code exactly.
    """
    from repro.protocol.instance import RingInstance

    return type(instance) is RingInstance


# ----------------------------------------------------------------------
# Packed per-K state spaces
# ----------------------------------------------------------------------

@dataclass
class KernelStats:
    """Timings and reduction counters of one kernel build."""

    compile_seconds: float = 0.0
    encode_seconds: float = 0.0
    states_encoded: int = 0
    full_states: int = 0
    quotient_states: int = 0
    attached: bool = False

    @property
    def encode_rate(self) -> float:
        """States whose successor rows were emitted, per second."""
        if self.encode_seconds <= 0.0:
            return 0.0
        return self.states_encoded / self.encode_seconds

    @property
    def quotient_ratio(self) -> float:
        """Full-space size over quotient size (0 when not quotiented)."""
        if not self.quotient_states:
            return 0.0
        return self.full_states / self.quotient_states


@dataclass
class PackedSpace:
    """One built state space in flat form.

    ``codes[i]`` is the packed code of state index ``i`` (``None``
    stands for the identity — full spaces enumerate every code in
    order, so index == code); ``succ_flat``/``succ_off`` are CSR
    adjacency over state indices; ``invariant`` is one byte per state.
    The buffers are heap ``array('q')``/``bytearray`` when freshly
    built and typed mmap ``memoryview`` sections when attached from the
    artifact store; all consumers index and iterate them identically.
    """

    ring_size: int
    cell_count: int
    codes: "array | memoryview | None"
    succ_off: "array | memoryview"
    succ_flat: "array | memoryview"
    invariant: "bytearray | memoryview"
    cells: tuple
    stats: KernelStats

    def __len__(self) -> int:
        return len(self.invariant)

    # -- decode / encode ------------------------------------------------
    def decode(self, index: int) -> tuple:
        """The global state tuple of state index *index*."""
        code = index if self.codes is None else self.codes[index]
        digits = []
        for _ in range(self.ring_size):
            code, digit = divmod(code, self.cell_count)
            digits.append(digit)
        return tuple(self.cells[d] for d in reversed(digits))

    def encode(self, state: tuple) -> int:
        """The packed code of a global state tuple."""
        cell_index = {cell: i for i, cell in enumerate(self.cells)}
        code = 0
        for cell in state:
            code = code * self.cell_count + cell_index[cell]
        return code

    def successor_lists(self) -> list[list[int]]:
        """Materialize the CSR adjacency as per-state lists."""
        off, flat = self.succ_off, self.succ_flat
        return [list(flat[off[i]:off[i + 1]]) for i in range(len(self))]

    def iter_states(self) -> Iterator[tuple]:
        return (self.decode(i) for i in range(len(self)))


def build_full(instance: "RingInstance") -> PackedSpace:
    """The full packed state space of one ring instance."""
    with obs.span("kernel.encode", K=instance.size, mode="full") as span:
        space = _build_full(instance)
        if span is not None:
            span.attrs["states"] = len(space)
        obs.metric("kernel.states_encoded", len(space))
        return space


def _build_full(instance: "RingInstance") -> PackedSpace:
    compiled = compile_protocol(instance.protocol)
    ring_size = instance.size
    cell_count = compiled.cell_count
    began = time.perf_counter()
    total = cell_count ** ring_size
    succ_off = array("q", bytes(8 * (total + 1)))
    succ_flat = array("q")
    invariant = bytearray(total)

    targets = compiled.target_rows
    legit = compiled.legit
    left = compiled.reads_left
    width = compiled.window_width
    # Weight of ring position r inside the packed code (r = 0 most
    # significant, matching itertools.product enumeration order).
    position_pow = [cell_count ** (ring_size - 1 - r)
                    for r in range(ring_size)]
    window_pow = [cell_count ** i for i in range(width)]
    # Window of process r reads ring positions (r - left .. r + right);
    # precompute them so the hot loop is pure indexing.
    window_positions = [
        [(r - left + i) % ring_size for i in range(width)]
        for r in range(ring_size)]

    digits = [0] * ring_size
    append = succ_flat.append
    for code in range(total):
        inside = 1
        for r in range(ring_size):
            window = 0
            for i, position in enumerate(window_positions[r]):
                window += digits[position] * window_pow[i]
            if not legit[window]:
                inside = 0
            row = targets[window]
            if row:
                own = digits[r]
                weight = position_pow[r]
                for cell in row:
                    append(code + (cell - own) * weight)
        invariant[code] = inside
        succ_off[code + 1] = len(succ_flat)
        # Odometer: advance to the next code's digit vector.
        r = ring_size - 1
        while r >= 0:
            digit = digits[r] + 1
            if digit == cell_count:
                digits[r] = 0
                r -= 1
            else:
                digits[r] = digit
                break
    stats = KernelStats(
        compile_seconds=compiled.compile_seconds,
        encode_seconds=time.perf_counter() - began,
        states_encoded=total,
        full_states=total,
    )
    return PackedSpace(
        ring_size=ring_size, cell_count=cell_count, codes=None,
        succ_off=succ_off, succ_flat=succ_flat, invariant=invariant,
        cells=compiled.cells, stats=stats)


def canonical_rotation(code: int, ring_size: int, cell_count: int) -> int:
    """The minimal packed code over all rotations of *code*."""
    msd = cell_count ** (ring_size - 1)
    best = rotated = code
    for _ in range(ring_size - 1):
        high, low = divmod(rotated, msd)
        rotated = low * cell_count + high
        if rotated < best:
            best = rotated
    return best


def build_quotient(instance: "RingInstance") -> PackedSpace:
    """The rotation-symmetry quotient of one ring instance's space.

    State indices enumerate canonical orbit representatives in
    increasing code order; an edge ``u -> v`` exists iff some member of
    orbit ``u`` has a successor in orbit ``v``.  Successor rows are
    computed for representatives only, so the expensive enumeration
    shrinks by the mean orbit size (~K).
    """
    with obs.span("kernel.encode", K=instance.size,
                  mode="quotient") as span:
        space = _build_quotient(instance)
        if span is not None:
            span.attrs["states"] = len(space)
        obs.metric("kernel.states_encoded", len(space))
        return space


def _build_quotient(instance: "RingInstance") -> PackedSpace:
    compiled = compile_protocol(instance.protocol)
    ring_size = instance.size
    cell_count = compiled.cell_count
    began = time.perf_counter()
    total = cell_count ** ring_size
    msd = cell_count ** (ring_size - 1)

    # Pass 1: canonical code of every orbit, representative list.
    canon = array("q", bytes(8 * total))
    codes = array("q")
    for code in range(total):
        if canon[code]:
            continue  # already tagged by a smaller orbit member
        # `code` is minimal in its orbit: smaller codes were all visited.
        rotated = code
        canon[code] = code
        for _ in range(ring_size - 1):
            high, low = divmod(rotated, msd)
            rotated = low * cell_count + high
            canon[rotated] = code
        codes.append(code)
    # Orbit {0} has canonical code 0, which the tagging above cannot
    # distinguish from "untagged"; the loop handles it first, so every
    # later 0 entry really means "canonicalizes to 0".
    rep_index = {code: i for i, code in enumerate(codes)}

    # Pass 2: successor rows for representatives only.
    count = len(codes)
    succ_off = array("q", bytes(8 * (count + 1)))
    succ_flat = array("q")
    invariant = bytearray(count)
    targets = compiled.target_rows
    legit = compiled.legit
    left = compiled.reads_left
    width = compiled.window_width
    position_pow = [cell_count ** (ring_size - 1 - r)
                    for r in range(ring_size)]
    window_pow = [cell_count ** i for i in range(width)]
    window_positions = [
        [(r - left + i) % ring_size for i in range(width)]
        for r in range(ring_size)]
    append = succ_flat.append
    for index in range(count):
        code = codes[index]
        digits = []
        rest = code
        for _ in range(ring_size):
            rest, digit = divmod(rest, cell_count)
            digits.append(digit)
        digits.reverse()
        inside = 1
        seen: set[int] = set()
        for r in range(ring_size):
            window = 0
            for i, position in enumerate(window_positions[r]):
                window += digits[position] * window_pow[i]
            if not legit[window]:
                inside = 0
            row = targets[window]
            if row:
                own = digits[r]
                weight = position_pow[r]
                for cell in row:
                    successor = rep_index[
                        canon[code + (cell - own) * weight]]
                    if successor not in seen:
                        seen.add(successor)
                        append(successor)
        invariant[index] = inside
        succ_off[index + 1] = len(succ_flat)
    stats = KernelStats(
        compile_seconds=compiled.compile_seconds,
        encode_seconds=time.perf_counter() - began,
        states_encoded=count,
        full_states=total,
        quotient_states=count,
    )
    return PackedSpace(
        ring_size=ring_size, cell_count=cell_count, codes=codes,
        succ_off=succ_off, succ_flat=succ_flat, invariant=invariant,
        cells=compiled.cells, stats=stats)


def _attach_space(instance: "RingInstance",
                  symmetry: bool) -> PackedSpace | None:
    """Attach a per-(protocol, K) packed space from the artifact store."""
    store = artifact_plane.ambient()
    if store is None:
        return None
    fingerprint = _protocol_fingerprint(instance.protocol)
    began = time.perf_counter()
    attached = store.attach("space", fingerprint,
                            K=instance.size, symmetry=symmetry)
    if attached is None:
        return None
    cells = instance.protocol.space.cells
    try:
        meta = attached.ints("meta")
        ring_size, cell_count, full_states, quotient_states = meta[:4]
        succ_off = attached.ints("succ_off")
        succ_flat = attached.ints("succ_flat")
        invariant = attached.view("invariant", "B")
        codes = attached.ints("codes") if symmetry else None
        count = len(invariant)
        if (ring_size != instance.size
                or cell_count != len(cells)
                or len(succ_off) != count + 1
                or (symmetry and len(codes) != count)
                or (not symmetry and count != len(cells) ** instance.size)):
            raise artifact_plane.ArtifactFormatError(
                "packed-space sections disagree with the instance")
    except artifact_plane.ArtifactFormatError as exc:
        store.stats.corrupt += 1
        obs.metric("artifacts.corrupt")
        obs.event("artifact-corrupt", level="warning",
                  artifact="space", path=str(attached.path), reason=str(exc))
        attached.close()
        try:
            attached.path.unlink()
        except OSError:
            pass
        return None
    stats = KernelStats(
        encode_seconds=time.perf_counter() - began,
        full_states=int(full_states),
        quotient_states=int(quotient_states),
        attached=True,
    )
    return PackedSpace(
        ring_size=instance.size, cell_count=len(cells), codes=codes,
        succ_off=succ_off, succ_flat=succ_flat, invariant=invariant,
        cells=cells, stats=stats)


def _publish_space(instance: "RingInstance", symmetry: bool,
                   space: PackedSpace) -> None:
    store = artifact_plane.ambient()
    if store is None or store.mode == "ro":
        return
    meta = array("q", [space.ring_size, space.cell_count,
                       space.stats.full_states,
                       space.stats.quotient_states])
    sections = {
        "meta": ("q", meta.tobytes()),
        "succ_off": ("q", space.succ_off.tobytes()),
        "succ_flat": ("q", space.succ_flat.tobytes()),
        "invariant": ("B", bytes(space.invariant)),
    }
    if space.codes is not None:
        sections["codes"] = ("q", space.codes.tobytes())
    store.publish("space", _protocol_fingerprint(instance.protocol),
                  sections, K=instance.size, symmetry=symmetry)


def build_space(instance: "RingInstance",
                symmetry: bool = False) -> PackedSpace:
    """Build the packed space, quotiented when *symmetry* is set.

    With an ambient artifact store the CSR buffers are attached by
    ``(fingerprint, K, symmetry)`` when a prior run (or the parent
    process) already built them; a fresh build publishes its buffers
    back so the next attach is zero-copy.
    """
    attached = _attach_space(instance, symmetry)
    if attached is not None:
        return attached
    space = build_quotient(instance) if symmetry else build_full(instance)
    _publish_space(instance, symmetry, space)
    return space
