"""Parallel, cached execution engine for independent analysis work items.

The paper's cost comparison (local reasoning vs. per-K model checking,
Section 7 / benchmark X2) is only honest when the per-K baseline runs as
fast as the hardware allows.  Per-K sweep instances, per-support
contiguous-trail searches and per-protocol fuzzing audits are all
embarrassingly parallel, and repeated CLI/benchmark invocations redo
identical work.  This package supplies the three missing pieces:

* :func:`run_work_items` — a process-pool fan-out with deterministic
  result ordering and a transparent serial fallback (``jobs=1``, no
  ``fork``, or unpicklable results);
* :class:`ResultCache` — a content-addressed result cache keyed on a
  canonical protocol fingerprint plus analysis parameters, with an
  in-memory layer and an optional on-disk layer under ``.repro-cache/``;
* :class:`EngineStats` — lightweight instrumentation (per-stage wall
  time, states explored, cache hit/miss counters, kernel compile /
  encode-rate / quotient counters) threaded into the sweep / livelock /
  convergence / fuzzing reports and surfaced by the CLI's ``--jobs``
  and ``--cache`` flags;
* :mod:`repro.engine.kernel` — the compiled bit-packed state-space
  backend behind :class:`repro.checker.StateGraph`: per-protocol guard
  compilation, base-``|C|`` packed global states in flat arrays, and
  an opt-in ring-rotation symmetry quotient (CLI ``--backend`` /
  ``--symmetry``);
* :mod:`repro.engine.localkernel` — the bitmask-compiled *local*
  reasoning kernel behind the contiguous-trail search, the Theorem 4.2
  check and the Section 6 synthesis loop: integer-indexed local
  states, per-``(K, |E|)`` product-graph skeletons, masked SCC passes
  and a support-fingerprint trail memo;
* :mod:`repro.engine.supervisor` /  :mod:`repro.engine.journal` — the
  fault-tolerance layer over the pool: :func:`supervise_work_items`
  adds per-task timeouts, crash isolation, retry with backoff and
  degradation to a serial fallback, and :class:`RunJournal` checkpoints
  sweep / synthesis progress under ``.repro-cache/runs/<run-id>/`` so
  ``repro sweep --resume`` skips completed items (CLI ``--timeout`` /
  ``--retries`` / ``--checkpoint`` / ``--resume``);
* :mod:`repro.engine.scheduler` — the batch execution strategy under
  :func:`supervise_work_items`: persistent supervised workers pulling
  adaptively sized batches (cost-model driven, heartbeat timeouts,
  requeue-on-crash) so micro-task sweeps stop paying one fork and one
  fsync per task (CLI ``--schedule`` / ``--batch-size``);
* :mod:`repro.engine.artifacts` — the zero-copy artifact plane:
  compiled kernels, localkernel skeletons and per-``(protocol, K)``
  packed state graphs serialized into a content-addressed store under
  ``.repro-cache/artifacts/`` and mmap-attached by later runs, spawn
  workers and batch workers as typed memoryviews — warm starts without
  recompilation (CLI ``--artifacts`` / ``--cache-limit`` /
  ``repro cache``).
"""

from repro.engine.artifacts import (
    ArtifactStats,
    ArtifactStore,
    open_store,
)
from repro.engine.cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
)
from repro.engine.fingerprint import analysis_key, protocol_fingerprint
from repro.engine.kernel import (
    CompiledProtocol,
    KernelStats,
    PackedSpace,
    build_space,
    compile_protocol,
    supports_kernel,
)
from repro.engine.journal import (
    JournalError,
    JournalStats,
    RunJournal,
    list_runs,
    new_run_id,
    runs_root,
)
from repro.engine.pool import (
    PortableContext,
    WorkerFailure,
    WorkerTraceback,
    parallelism_available,
    run_work_items,
    spawn_dispatch_available,
)
from repro.engine.stats import EngineStats
from repro.engine.supervisor import (
    FaultPlan,
    SupervisorError,
    SupervisorPolicy,
    supervise_work_items,
)
from repro.engine.scheduler import BatchScheduler, CostModel

# Imported last: localkernel pulls in repro.core.trail, whose package
# __init__ imports back into repro.engine — every name above must
# already be bound by then.
from repro.engine.localkernel import (
    LocalKernel,
    LocalKernelStats,
    local_kernel_for,
)

__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "BatchScheduler",
    "CostModel",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "PortableContext",
    "CompiledProtocol",
    "EngineStats",
    "FaultPlan",
    "JournalError",
    "JournalStats",
    "KernelStats",
    "LocalKernel",
    "LocalKernelStats",
    "PackedSpace",
    "ResultCache",
    "RunJournal",
    "SupervisorError",
    "SupervisorPolicy",
    "WorkerFailure",
    "WorkerTraceback",
    "analysis_key",
    "build_space",
    "compile_protocol",
    "list_runs",
    "local_kernel_for",
    "new_run_id",
    "open_store",
    "parallelism_available",
    "protocol_fingerprint",
    "run_work_items",
    "spawn_dispatch_available",
    "runs_root",
    "supervise_work_items",
    "supports_kernel",
]
