"""Fault-tolerant supervision of engine work items.

:func:`repro.engine.run_work_items` makes a batch *parallel*; this
module makes it *survivable*.  Per-item cost in the workloads above it
(per-K sweep instances, per-support trail searches, per-combination
synthesis verdicts) is heavily skewed — one pathological instance can
hang or OOM while its siblings finish in milliseconds — and with the
plain pool a single crashed worker used to take the whole run with it.
:func:`supervise_work_items` runs work under a
:class:`SupervisorPolicy`:

* **timeouts** — a task exceeding the per-task wall-clock budget is
  SIGKILLed and retried with exponential backoff;
* **crash isolation** — a worker that dies (segfault, OOM kill,
  injected SIGKILL) fails only its own task, which is retried on a
  fresh child; sibling tasks keep running;
* **degradation** — a task that exhausts its retry budget is executed
  once more *in the parent process* through the caller's fallback
  worker (the serial naive backend at the engine call sites) instead of
  aborting the run;
* **checkpointing** — with a :class:`repro.engine.journal.RunJournal`,
  every completed item is durably appended before the supervisor moves
  on, and items already in the journal are returned without
  re-execution (``repro sweep --resume``);
* **observability** — ``task-timeout`` / ``task-retry`` /
  ``task-degraded`` / ``task-resumed`` events, ``supervisor.*``
  counters, and per-item span adoption exactly like the plain pool.

Two execution strategies provide those guarantees (``--schedule``):

* **task mode** (:class:`_Supervisor`, the PR 5 design) forks one child
  per task *attempt* — maximal isolation, one fork + one pipe
  round-trip of overhead per task;
* **batch mode** (:class:`repro.engine.scheduler.BatchScheduler`) keeps
  a pool of persistent supervised workers pulling adaptively sized
  batches from a shared queue — the same per-*task* supervision
  semantics (heartbeat-armed timeouts, crash isolates to the in-flight
  task, the rest of a dead worker's batch is requeued without spending
  retry budget) at a fraction of the dispatch cost.

``schedule="auto"`` (the default everywhere) picks batch mode whenever
children would be forked anyway and there is more than one task.  Both
strategies share one :class:`TaskLedger` — the resume/checkpoint/
retry/degrade bookkeeping — so verdicts are identical by construction;
the property-based differential harness checks it anyway.

When no policy, journal or fault plan is given the call delegates to
:func:`run_work_items` unchanged — supervision is strictly opt-in and
the fast path stays the fast path.

Unlike the pool (which pickles only item indices), the supervisor forks
children that inherit worker, context and items, so all three may hold
unpicklable objects; only results cross the pipe.  A worker
*exception* (as opposed to a death) is treated as deterministic: it is
not retried but re-raised in the parent with the remote traceback
chained, matching the pool's contract.

Fault injection (:class:`FaultPlan`) is part of the module on purpose:
the property-based differential suite and the CI smoke job inject
worker crashes, hangs and parent deaths through the same code path
users exercise, via the ``REPRO_INJECT_FAULT`` environment variable
(e.g. ``crash:0``, ``hang:1,2``, ``die-after:3``; test-only, never set
in production).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.engine.pool import (
    WorkerFailure,
    _record_fallback,
    parallelism_available,
    run_work_items,
    spawn_dispatch_available,
    start_method,
)
from repro.obs import live
from repro.obs import runtime as obs
from repro.obs.metrics import Histogram

#: Environment variable read by :meth:`FaultPlan.from_env`.
FAULT_ENV = "REPRO_INJECT_FAULT"

#: Valid ``schedule=`` arguments of :func:`supervise_work_items`.
SCHEDULES = ("auto", "batch", "task")


class SupervisorError(Exception):
    """A task failed beyond its retry budget with degradation off."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """How hard to try before giving up on a work item.

    ``timeout`` is the per-task wall-clock budget in seconds (``None``
    disables the deadline); ``retries`` is how many *additional*
    attempts a crashed or timed-out task gets before degradation; the
    backoff before attempt ``n`` is ``backoff * 2**(n-1)`` seconds,
    capped at ``backoff_cap``.  With ``degrade`` (the default) a task
    that exhausts its budget runs once more in the parent through the
    fallback worker; without it the run raises :class:`SupervisorError`.
    """

    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.05
    backoff_cap: float = 2.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    def delay_before(self, attempt: int) -> float:
        """Backoff in seconds before retry *attempt* (1-based)."""
        return min(self.backoff * (2.0 ** (attempt - 1)),
                   self.backoff_cap)


@dataclass
class FaultPlan:
    """Deterministic fault injection for tests and smoke runs.

    ``crash_items`` / ``hang_items`` name item indices whose *first*
    attempt is sabotaged in the child (SIGKILL / sleep past any
    timeout); retries run clean, so a supervised run always converges.
    ``die_after_checkpoints`` hard-kills the parent after that many
    journal checkpoints — the ``kill -9`` of the whole run that
    ``--resume`` exists for.  ``delay_seconds`` slows **every** task
    attempt down by a uniform sleep — the deliberately-degraded run the
    cross-run ledger's ``repro runs diff`` must flag as a timing
    regression.  ``die`` is patchable so in-process tests can observe
    the death without losing the interpreter.
    """

    crash_items: frozenset = frozenset()
    hang_items: frozenset = frozenset()
    die_after_checkpoints: int | None = None
    delay_seconds: float = 0.0
    hang_seconds: float = 3600.0
    die: Callable[[int], Any] = field(default=os._exit, repr=False)

    def child_fault(self, index: int, attempt: int) -> str | None:
        if attempt > 0:
            return None
        if index in self.crash_items:
            return "crash"
        if index in self.hang_items:
            return "hang"
        return None

    def child_delay(self) -> None:
        if self.delay_seconds > 0:
            time.sleep(self.delay_seconds)

    def on_checkpoint(self, count: int) -> None:
        if self.die_after_checkpoints is not None \
                and count >= self.die_after_checkpoints:
            self.die(70)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan | None":
        """Parse ``REPRO_INJECT_FAULT`` (``;``-separated clauses:
        ``crash:<i,j>``, ``hang:<i,j>``, ``die-after:<n>``,
        ``delay:<seconds>``)."""
        spec = (environ or os.environ).get(FAULT_ENV)
        if not spec:
            return None
        crash: set[int] = set()
        hang: set[int] = set()
        die_after: int | None = None
        delay = 0.0
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            kind, _, arg = clause.partition(":")
            if kind == "crash":
                crash.update(int(i) for i in arg.split(",") if i)
            elif kind == "hang":
                hang.update(int(i) for i in arg.split(",") if i)
            elif kind == "die-after":
                die_after = int(arg)
            elif kind == "delay":
                delay = float(arg)
            else:
                raise ValueError(
                    f"unknown {FAULT_ENV} clause {clause!r}")
        return cls(crash_items=frozenset(crash),
                   hang_items=frozenset(hang),
                   die_after_checkpoints=die_after,
                   delay_seconds=delay)


# ----------------------------------------------------------------------
# child side (task mode: one fork per attempt)
# ----------------------------------------------------------------------
def _child_main(worker, context, item, index: int, attempt: int,
                conn, plan: FaultPlan | None) -> None:
    """Run one work item in a forked child and ship the result back.

    Everything arrives by fork inheritance (nothing here is pickled on
    the way in), so unpicklable workers/contexts/items are fine; the
    result — or a :class:`WorkerFailure` — is the only thing sent.
    """
    fault = plan.child_fault(index, attempt) if plan is not None else None
    if fault == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if fault == "hang":
        time.sleep(plan.hang_seconds)
    if plan is not None:
        plan.child_delay()
    inherited = obs.fork_capture_begin()
    try:
        try:
            outcome: Any = ("ok", worker(context, item))
        except BaseException as exc:
            outcome = ("failed", WorkerFailure.capture(exc))
    finally:
        capture = obs.fork_capture_end(inherited)
    try:
        conn.send((outcome, capture))
    except Exception as exc:
        # Unpicklable result: tell the parent why instead of presenting
        # as a crash (the parent degrades this task, not the batch).
        try:
            conn.send(((
                "unpicklable",
                f"{type(exc).__name__}: {exc}"), None))
        except Exception:
            pass
    conn.close()
    os._exit(0)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class _Task:
    index: int
    key: str | None
    attempts: int = 0
    ready_at: float = 0.0


@dataclass
class _Running:
    task: _Task
    process: Any
    conn: Any
    deadline: float | None
    started: float = 0.0


def _bump(stats: Any, attribute: str, metric: str,
          amount: float = 1) -> None:
    obs.metric(metric, amount)
    if stats is not None:
        setattr(stats, attribute, getattr(stats, attribute) + amount)


class TaskLedger:
    """The supervision bookkeeping both execution strategies share.

    Resume-from-journal, completion checkpointing, the retry/degrade
    ladder, deterministic-failure latching and result ordering all live
    here; :class:`_Supervisor` (task mode) and
    :class:`repro.engine.scheduler.BatchScheduler` (batch mode) are
    pure execution strategies over one ledger — which is what makes
    their verdicts identical by construction.
    """

    def __init__(self, worker, work: Sequence[Any], context: Any,
                 stats: Any, policy: SupervisorPolicy, journal,
                 keys: Sequence[str] | None, fallback_worker,
                 plan: FaultPlan | None) -> None:
        self.worker = worker
        self.work = work
        self.context = context
        self.stats = stats
        self.policy = policy
        self.journal = journal
        self.keys = keys
        self.fallback_worker = fallback_worker or worker
        self.plan = plan
        self.results: dict[int, Any] = {}
        self.failure: WorkerFailure | None = None

    def key(self, index: int) -> str | None:
        return self.keys[index] if self.keys is not None else None

    def resume_completed(self) -> list[_Task]:
        """Split the batch into journal hits and tasks still to run."""
        pending: list[_Task] = []
        for index in range(len(self.work)):
            key = self.key(index)
            if self.journal is not None and key is not None \
                    and key in self.journal.completed:
                self.results[index] = self.journal.completed[key]
                _bump(self.stats, "supervisor_resumed",
                      "supervisor.resumed")
                obs.event("task-resumed", index=index, key=key)
                continue
            pending.append(_Task(index=index, key=key))
        return pending

    def complete(self, task: _Task, result: Any) -> None:
        live.note(done=1)
        self.results[task.index] = result
        if self.journal is not None and task.key is not None:
            before = self.journal.stats.entries_recorded
            self.journal.record(task.key, result)
            # record() already emits the ambient supervisor.checkpoints
            # metric; only mirror actual appends into the run's stats.
            if self.stats is not None:
                self.stats.supervisor_checkpoints += (
                    self.journal.stats.entries_recorded - before)
            if self.plan is not None:
                # The injector's contract is "die after N *durable*
                # checkpoints": commit any group-commit buffer before
                # the (possibly hard) death so resume sees exactly N.
                self.journal.flush()
                self.plan.on_checkpoint(
                    self.journal.stats.entries_recorded)

    def record_failure(self, task: _Task, failure: WorkerFailure) -> None:
        """A deterministic worker exception: latch the first one."""
        if self.failure is None:
            self.failure = failure
        self.results[task.index] = None

    def degrade(self, task: _Task, reason: str) -> None:
        """Retry budget exhausted: run in-parent via the fallback."""
        if not self.policy.degrade:
            raise SupervisorError(
                f"work item {task.index} failed after "
                f"{task.attempts} attempts ({reason}) and degradation "
                f"is disabled")
        obs.event("task-degraded", level="warning", index=task.index,
                  key=task.key, attempts=task.attempts, reason=reason)
        _bump(self.stats, "supervisor_degraded", "supervisor.degraded")
        live.note(degraded=1)
        with obs.span("supervisor.degraded", index=task.index,
                      reason=reason):
            self.complete(task, self.fallback_worker(
                self.context, self.work[task.index]))

    def retry_or_degrade(self, task: _Task, reason: str) -> _Task | None:
        """Spend one unit of *task*'s retry budget.

        Returns the task (with its backoff ``ready_at`` stamped) when
        it should be requeued, or ``None`` when it was degraded and is
        already complete.
        """
        task.attempts += 1
        if task.attempts > self.policy.retries:
            self.degrade(task, reason)
            return None
        delay = self.policy.delay_before(task.attempts)
        task.ready_at = time.monotonic() + delay
        obs.event("task-retry", level="warning", index=task.index,
                  key=task.key, attempt=task.attempts, reason=reason,
                  delay_seconds=delay)
        _bump(self.stats, "supervisor_retries", "supervisor.retries")
        live.note(retried=1)
        return task

    # -- serial mode (no children needed / no fork available) ----------
    def run_serial(self, pending: list[_Task], reason: str) -> None:
        if reason == "no-fork":
            _record_fallback(self.stats, reason, len(pending))
        obs.event("supervisor-serial", reason=reason,
                  items=len(pending))
        with obs.span("supervisor.serial", reason=reason,
                      items=len(pending)):
            for task in pending:
                if self.plan is not None:
                    self.plan.child_delay()
                self.complete(task, self.worker(
                    self.context, self.work[task.index]))
                live.tick()

    def ordered_results(self) -> list[Any]:
        return [self.results[i] for i in range(len(self.work))]


class _Supervisor:
    """Task-mode execution: one forked child per task attempt."""

    def __init__(self, ledger: TaskLedger, jobs: int) -> None:
        self.ledger = ledger
        self.jobs = max(1, jobs)
        self.policy = ledger.policy
        self._mp = multiprocessing.get_context("fork")
        # Local (not ambient) so stall detection works without --trace.
        self.durations = Histogram("supervisor.task_seconds")

    def _spawn(self, task: _Task) -> _Running:
        ledger = self.ledger
        receiver, sender = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_child_main,
            args=(ledger.worker, ledger.context, ledger.work[task.index],
                  task.index, task.attempts, sender, ledger.plan),
            daemon=True)
        process.start()
        sender.close()  # the child's end lives in the child
        deadline = (time.monotonic() + self.policy.timeout
                    if self.policy.timeout is not None else None)
        return _Running(task=task, process=process, conn=receiver,
                        deadline=deadline, started=time.monotonic())

    def _reap(self, running: _Running) -> None:
        running.conn.close()
        running.process.join(timeout=5.0)

    def _kill(self, running: _Running) -> None:
        try:
            running.process.kill()
        except Exception:
            pass
        self._reap(running)

    def _requeue(self, task: _Task, reason: str,
                 pending: list[_Task]) -> None:
        requeued = self.ledger.retry_or_degrade(task, reason)
        if requeued is not None:
            pending.append(requeued)

    def _handle_message(self, running: _Running,
                        pending: list[_Task]) -> None:
        task = running.task
        try:
            (status, value), capture = running.conn.recv()
        except (EOFError, OSError):
            self._reap(running)
            self._requeue(task, "worker-died", pending)
            return
        self._reap(running)
        self.durations.observe(time.monotonic() - running.started)
        obs.adopt_child(capture, f"item[{task.index}]",
                        attempt=task.attempts)
        if status == "ok":
            self.ledger.complete(task, value)
        elif status == "failed":
            # Deterministic worker exception: no retry; re-raised (with
            # the remote traceback chained) once in-flight siblings are
            # drained.
            self.ledger.record_failure(task, value)
        else:  # unpicklable result
            self.ledger.degrade(task, f"unpicklable-result ({value})")

    def run_supervised(self, pending: list[_Task]) -> None:
        ledger = self.ledger
        slots = min(self.jobs, max(1, len(pending)))
        queue = list(pending)
        running: list[_Running] = []
        if ledger.stats is not None and slots > 1:
            ledger.stats.parallel = True
        with obs.span("supervisor.map", jobs=self.jobs,
                      items=len(queue),
                      timeout=self.policy.timeout,
                      retries=self.policy.retries):
            try:
                while (queue or running) and ledger.failure is None:
                    now = time.monotonic()
                    # Launch every ready task into a free slot.
                    still_waiting: list[_Task] = []
                    for task in queue:
                        if len(running) < slots and task.ready_at <= now:
                            running.append(self._spawn(task))
                        else:
                            still_waiting.append(task)
                    queue = still_waiting
                    if not running:
                        # Everything is backing off; sleep to the first
                        # ready time.
                        wake = min(t.ready_at for t in queue)
                        time.sleep(max(0.0, min(wake - now, 0.25)))
                        continue
                    timeout = self._wait_timeout(queue, running, now)
                    ready = multiprocessing.connection.wait(
                        [r.conn for r in running]
                        + [r.process.sentinel for r in running],
                        timeout=timeout)
                    ready_set = set(ready)
                    now = time.monotonic()
                    survivors: list[_Running] = []
                    for item in running:
                        if item.conn in ready_set or item.conn.poll():
                            self._handle_message(item, queue)
                        elif item.process.sentinel in ready_set:
                            # Child died without delivering a result.
                            self._reap(item)
                            self._requeue(item.task, "worker-died",
                                          queue)
                        elif item.deadline is not None \
                                and now >= item.deadline:
                            self._kill(item)
                            obs.event("task-timeout", level="warning",
                                      index=item.task.index,
                                      key=item.task.key,
                                      attempt=item.task.attempts,
                                      timeout_seconds=self.policy.timeout)
                            _bump(ledger.stats, "supervisor_timeouts",
                                  "supervisor.timeouts")
                            self._requeue(item.task, "timeout", queue)
                        else:
                            survivors.append(item)
                    running = survivors
                    live.tick(lambda: self._live_payload(
                        running, len(queue)))
            finally:
                for item in running:
                    self._kill(item)

    def _live_payload(self, running: list[_Running],
                      queued: int) -> dict[str, Any]:
        """Extra snapshot fields for the live plane (built only when a
        snapshot is actually due — see :func:`repro.obs.live.tick`)."""
        now = time.monotonic()
        p95 = self.durations.quantile(0.95)
        threshold = live.stall_threshold(p95)
        workers = []
        for item in running:
            age = now - item.started
            workers.append({
                "ident": item.process.pid, "pid": item.process.pid,
                "busy": True, "task": item.task.index,
                "age_seconds": round(age, 3),
                "stalled": age > threshold})
        mean = self.durations.mean if self.durations.count else None
        remaining = queued + len(running)
        stage: dict[str, Any] = {"mode": "task"}
        if mean is not None:
            stage["ewma_task_seconds"] = mean
            stage["eta_seconds"] = round(
                remaining * mean / max(1, self.jobs), 3)
        if p95 is not None:
            stage["p95_task_seconds"] = p95
        payload = {"workers": workers, "stage": stage,
                   "tasks": {"in_flight": len(running)}}
        payload.update(live.cache_payload(self.ledger.stats))
        return payload

    def _wait_timeout(self, queue: list[_Task],
                      running: list[_Running], now: float) -> float:
        horizon = 0.5
        deadlines = [r.deadline for r in running
                     if r.deadline is not None]
        if deadlines:
            horizon = min(horizon, max(0.0, min(deadlines) - now))
        if queue:
            wake = min(t.ready_at for t in queue)
            if wake > now:
                horizon = min(horizon, wake - now)
        return max(horizon, 0.005)


def _spawn_dispatchable(ledger: "TaskLedger", portable) -> bool:
    """Whether spawn-mode batch dispatch can carry this workload.

    Spawn workers receive their payload by pickle, so beyond the
    platform offering the spawn method the worker function, the
    portable context recipe, the item list and the fault plan must all
    round-trip; anything that does not keeps the serial fallback.
    """
    if start_method() != "spawn" or not spawn_dispatch_available():
        return False
    import pickle

    try:
        pickle.dumps((ledger.worker, portable, ledger.work, ledger.plan))
    except Exception:
        return False
    return True


def supervise_work_items(worker: Callable[[Any, Any], Any],
                         items: Iterable[Any],
                         jobs: int = 1,
                         context: Any = None,
                         stats: Any = None,
                         policy: SupervisorPolicy | None = None,
                         journal=None,
                         keys: Sequence[str] | None = None,
                         fallback_worker: Callable[[Any, Any], Any]
                         | None = None,
                         plan: FaultPlan | None = None,
                         schedule: str = "auto",
                         batch_size: int | None = None,
                         prewarm: Callable[[], None] | None = None,
                         portable=None,
                         ) -> list[Any]:
    """Apply ``worker(context, item)`` to every item under supervision.

    Drop-in superset of :func:`repro.engine.run_work_items`: with no
    *policy*, *journal* or fault plan (and *schedule* not forced to
    ``"batch"``) the call delegates there unchanged.  Otherwise work
    runs under the *policy*'s timeout/retry/degradation ladder, results
    come back in item order, and — when *journal* and *keys* (one per
    item) are given — completed items are checkpointed durably and
    journal hits are returned without re-execution.

    *schedule* picks the execution strategy: ``"task"`` forks one child
    per attempt (the PR 5 design), ``"batch"`` runs persistent workers
    pulling adaptively sized batches (*batch_size* pins the size), and
    ``"auto"`` — the default — uses batch mode whenever children would
    be forked anyway and more than one task is pending.  Verdicts are
    identical across schedules; only dispatch overhead differs.

    *prewarm*, when given, is called once in the parent immediately
    before children are forked — the engine call sites compile the
    protocol's kernels here so every worker inherits hot caches through
    fork instead of recompiling per task.

    *fallback_worker* is what a degraded task runs in-parent (the
    engine call sites pass the serial naive backend); it defaults to
    *worker*.  On a platform without ``fork`` everything runs serially
    in-parent (journaling still works; timeouts cannot be enforced and
    ``supervisor-serial`` / ``pool-fallback`` events say so) — unless
    *portable* (a :class:`repro.engine.pool.PortableContext`) is given
    and the whole worker payload pickles, in which case batch mode runs
    over **spawned** persistent workers that rebuild the context from
    the portable recipe and attach the parent's published artifacts by
    fingerprint instead of recompiling.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r} "
                         f"(expected one of {', '.join(SCHEDULES)})")
    work = list(items)
    if plan is None:
        plan = FaultPlan.from_env()
    supervised = (policy is not None or journal is not None
                  or plan is not None)
    if not supervised and schedule != "batch":
        return run_work_items(worker, work, jobs=jobs, context=context,
                              stats=stats, portable=portable)
    if journal is not None and (keys is None or len(keys) != len(work)):
        raise ValueError("journaling needs one key per work item")
    policy = policy or SupervisorPolicy()

    ledger = TaskLedger(worker, work, context, stats, policy, journal,
                        keys, fallback_worker, plan)
    pending = ledger.resume_completed()
    live.begin_stage(getattr(worker, "__name__", "supervised.map"),
                     total=len(work),
                     resumed=len(work) - len(pending))
    live.tick()
    if pending:
        fork = parallelism_available()
        spawn = (not fork and portable is not None
                 and _spawn_dispatchable(ledger, portable))
        injected = plan is not None and (plan.crash_items
                                         or plan.hang_items
                                         or plan.delay_seconds)
        wants_children = (policy.timeout is not None or jobs > 1
                          or injected)
        use_batch = ((fork or spawn) and len(pending) > 1
                     and (schedule == "batch"
                          or (schedule == "auto" and wants_children)))
        use_task = fork and wants_children and not use_batch
        if (use_batch or use_task) and prewarm is not None:
            # Fork workers inherit what prewarm compiles; spawn workers
            # attach what prewarm *publishes* to the artifact store.
            with obs.span("scheduler.prewarm"):
                prewarm()
        if use_batch:
            from repro.engine.scheduler import BatchScheduler

            BatchScheduler(ledger, jobs=jobs, batch_size=batch_size,
                           start_method="fork" if fork else "spawn",
                           portable=portable if not fork else None,
                           ).run(pending)
        elif use_task:
            _Supervisor(ledger, jobs).run_supervised(pending)
        else:
            ledger.run_serial(
                pending, "no-fork" if not fork else
                "nothing-to-supervise")
    if ledger.failure is not None:
        ledger.failure.reraise()
    return ledger.ordered_results()
