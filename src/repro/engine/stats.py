"""Engine instrumentation: stage timings, work counts, cache counters.

An :class:`EngineStats` travels inside analysis reports (always as a
``compare=False`` field, so two runs with different timings still compare
equal on their verdicts) and is rendered by ``summary()`` for the CLI and
the benchmark artifacts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters for one engine-backed analysis run.

    Attributes
    ----------
    jobs:
        The requested degree of parallelism (1 = serial).
    parallel:
        Whether the process pool actually ran (``jobs > 1`` and more than
        one uncached work item on a platform with ``fork``).
    work_items:
        Independent work items executed this run (cache hits excluded).
    states_explored:
        Global states enumerated by freshly computed work items.
    cache_hits, cache_misses:
        Cache lookups answered / not answered during this run.
    stage_seconds:
        Wall time per named stage, e.g. ``{"sweep": 0.12}``.
    """

    jobs: int = 1
    parallel: bool = False
    work_items: int = 0
    states_explored: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        """Time a ``with``-block and accumulate it under *name*."""
        began = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - began
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def summary(self) -> str:
        """A one-line human-readable rendering for the CLI."""
        mode = (f"{self.jobs} jobs" if self.parallel
                else "serial" + (f" (jobs={self.jobs} requested)"
                                 if self.jobs > 1 else ""))
        parts = [f"engine: {mode}",
                 f"{self.work_items} work items",
                 f"{self.states_explored} states explored",
                 f"cache {self.cache_hits} hits / "
                 f"{self.cache_misses} misses"]
        if self.stage_seconds:
            stages = ", ".join(f"{name} {seconds * 1e3:.1f} ms"
                               for name, seconds
                               in self.stage_seconds.items())
            parts.append(stages)
        return "; ".join(parts)
