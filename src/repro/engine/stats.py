"""Engine instrumentation: stage timings, work counts, cache counters.

An :class:`EngineStats` travels inside analysis reports (always as a
``compare=False`` field, so two runs with different timings still compare
equal on their verdicts) and is rendered by ``summary()`` for the CLI and
the benchmark artifacts.

Since the observability rework the counters live in a
:class:`repro.obs.MetricsRegistry` under dotted names
(``engine.work_items``, ``kernel.compile_seconds``, ``stage.sweep``,
...): cross-stats aggregation is one registry merge instead of a
hand-written method per counter family, and the same named metrics flow
into ``--log-json`` run reports.  The flat attribute API
(``stats.cache_hits += 1``) is preserved on top of the registry, and
:meth:`stage` both accumulates the ``stage.<name>`` counter and opens a
span on the ambient observability run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, MutableMapping

from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry

#: Flat attribute name -> dotted metric name.  Every counter the old
#: dataclass carried, plus the pool-degradation counter.
_COUNTER_METRICS = {
    "work_items": "engine.work_items",
    "states_explored": "engine.states_explored",
    "cache_hits": "engine.cache_hits",
    "cache_misses": "engine.cache_misses",
    "pool_fallbacks": "pool.fallbacks",
    "supervisor_timeouts": "supervisor.timeouts",
    "supervisor_retries": "supervisor.retries",
    "supervisor_degraded": "supervisor.degraded",
    "supervisor_resumed": "supervisor.resumed",
    "supervisor_checkpoints": "supervisor.checkpoints",
    "scheduler_batches": "scheduler.batches",
    "scheduler_batch_items": "scheduler.batch_items",
    "scheduler_steals": "scheduler.steals",
    "scheduler_requeued": "scheduler.requeued",
    "live_snapshots": "live.snapshots",
    "artifact_hits": "artifacts.hits",
    "artifact_misses": "artifacts.misses",
    "artifact_stores": "artifacts.stores",
    "artifact_corrupt": "artifacts.corrupt",
    "artifact_evictions": "artifacts.evictions",
    "compile_seconds": "kernel.compile_seconds",
    "encode_seconds": "kernel.encode_seconds",
    "states_encoded": "kernel.states_encoded",
    "quotient_states": "kernel.quotient_states",
    "quotient_full_states": "kernel.quotient_full_states",
    "skeleton_compiles": "localkernel.skeleton_compiles",
    "mask_evaluations": "localkernel.mask_evaluations",
    "trail_cache_hits": "localkernel.trail_cache_hits",
    "verdict_cache_hits": "synthesis.verdict_cache_hits",
    "combos_pruned": "synthsearch.combos_pruned",
    "full_evaluations": "synthsearch.full_evaluations",
    "delta_reuses": "synthsearch.delta_reuses",
    "checkpoint_bytes": "synthsearch.checkpoint_bytes",
    "blocked_hits": "synthsearch.blocked_hits",
    "board_loaded": "synthsearch.board_loaded",
    "board_published": "synthsearch.board_published",
    "fvs_nodes_explored": "fvs.nodes_explored",
    "fvs_nodes_pruned": "fvs.nodes_pruned",
}

_STAGE_PREFIX = "stage."

#: What :meth:`EngineStats.merge_kernel_counters` folds in from a child
#: run: every kernel-family counter plus the per-stage timings (child
#: stage time used to vanish, systematically under-reporting sweeps).
_CHILD_METRIC_SELECTORS = (
    "kernel.", "localkernel.", "fvs.", "synthesis.", "synthsearch.",
    "artifacts.", _STAGE_PREFIX)


class _StageSeconds(MutableMapping):
    """``stats.stage_seconds`` — a dict-shaped live view over the
    registry's ``stage.<name>`` counters."""

    __slots__ = ("_metrics",)

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._metrics = metrics

    def __getitem__(self, name: str) -> float:
        key = _STAGE_PREFIX + name
        if key not in self._metrics:
            raise KeyError(name)
        return self._metrics.value(key)

    def __setitem__(self, name: str, seconds: float) -> None:
        self._metrics.counter(_STAGE_PREFIX + name).value = seconds

    def __delitem__(self, name: str) -> None:
        key = _STAGE_PREFIX + name
        if key not in self._metrics:
            raise KeyError(name)
        self._metrics.discard(key)

    def __iter__(self) -> Iterator[str]:
        for key in list(self._metrics):
            if key.startswith(_STAGE_PREFIX):
                yield key[len(_STAGE_PREFIX):]

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self))


class EngineStats:
    """Counters for one engine-backed analysis run.

    ``jobs`` (requested parallelism) and ``parallel`` (whether the
    process pool actually ran) are plain attributes; every other
    counter listed in ``_COUNTER_METRICS`` reads and writes through
    ``self.metrics``.  ``stage_seconds`` stays available as a mapping
    view over the ``stage.*`` counters.
    """

    def __init__(self, jobs: int = 1, parallel: bool = False,
                 stage_seconds: dict[str, float] | None = None,
                 **counters: float) -> None:
        self.metrics = MetricsRegistry()
        self.jobs = jobs
        self.parallel = parallel
        for name, seconds in (stage_seconds or {}).items():
            self.metrics.counter(_STAGE_PREFIX + name).value = seconds
        for name, value in counters.items():
            metric = _COUNTER_METRICS.get(name)
            if metric is None:
                raise TypeError(
                    f"EngineStats got an unexpected counter {name!r}")
            self.metrics.counter(metric).value = value

    # -- attribute <-> metric routing ---------------------------------
    def __getattr__(self, name: str) -> Any:
        metric = _COUNTER_METRICS.get(name)
        if metric is None or "metrics" not in self.__dict__:
            raise AttributeError(name)
        return self.__dict__["metrics"].value(metric)

    def __setattr__(self, name: str, value: Any) -> None:
        metric = _COUNTER_METRICS.get(name)
        if metric is not None and "metrics" in self.__dict__:
            self.__dict__["metrics"].counter(metric).value = value
        else:
            object.__setattr__(self, name, value)

    @property
    def stage_seconds(self) -> _StageSeconds:
        return _StageSeconds(self.metrics)

    @stage_seconds.setter
    def stage_seconds(self, stages: dict[str, float]) -> None:
        for key in [n for n in self.metrics if n.startswith(_STAGE_PREFIX)]:
            self.metrics.discard(key)
        for name, seconds in stages.items():
            self.metrics.counter(_STAGE_PREFIX + name).value = seconds

    # -- recording -----------------------------------------------------
    @contextmanager
    def stage(self, name: str, **attrs: Any):
        """Time a ``with``-block: accumulate it under ``stage.<name>``
        and trace it as a span (with *attrs*) on the ambient obs run."""
        began = time.perf_counter()
        try:
            with obs.span(name, **attrs):
                yield self
        finally:
            elapsed = time.perf_counter() - began
            self.metrics.counter(_STAGE_PREFIX + name).inc(elapsed)

    # -- derived values ------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def encode_rate(self) -> float:
        """Kernel states-per-second (0 when the kernel never ran)."""
        if self.encode_seconds <= 0.0:
            return 0.0
        return self.states_encoded / self.encode_seconds

    @property
    def quotient_ratio(self) -> float:
        """Full states per kept orbit (0 when no quotient ran)."""
        if not self.quotient_states:
            return 0.0
        return self.quotient_full_states / self.quotient_states

    # -- aggregation ---------------------------------------------------
    def absorb_kernel(self, kernel_stats) -> None:
        """Accumulate a :class:`repro.engine.kernel.KernelStats` (or
        ``None``, for naive-backend runs) into these counters."""
        if kernel_stats is None:
            return
        self.compile_seconds += kernel_stats.compile_seconds
        self.encode_seconds += kernel_stats.encode_seconds
        self.states_encoded += kernel_stats.states_encoded
        if kernel_stats.quotient_states:
            self.quotient_states += kernel_stats.quotient_states
            self.quotient_full_states += kernel_stats.full_states

    def absorb_localkernel(self, kernel_stats) -> None:
        """Accumulate a per-run
        :class:`repro.engine.localkernel.LocalKernelStats` delta (or
        ``None``, for naive-backend runs) into these counters."""
        if kernel_stats is None:
            return
        self.compile_seconds += kernel_stats.compile_seconds
        self.skeleton_compiles += kernel_stats.skeleton_compiles
        self.mask_evaluations += kernel_stats.mask_evaluations
        self.trail_cache_hits += kernel_stats.trail_cache_hits

    def absorb_artifacts(self, delta) -> None:
        """Accumulate an :class:`repro.engine.artifacts.ArtifactStats`
        delta (or ``None``, when no artifact plane is active) into
        these counters."""
        if delta is None:
            return
        self.artifact_hits += delta.hits
        self.artifact_misses += delta.misses
        self.artifact_stores += delta.stores
        self.artifact_corrupt += delta.corrupt
        self.artifact_evictions += delta.evictions

    def absorb_fvs(self, fvs_stats) -> None:
        """Accumulate a :class:`repro.graphs.fvs.FvsStats` (or ``None``)
        into these counters."""
        if fvs_stats is None:
            return
        self.fvs_nodes_explored += fvs_stats.nodes_explored
        self.fvs_nodes_pruned += fvs_stats.nodes_pruned

    def merge_kernel_counters(self, other: "EngineStats | None") -> None:
        """Accumulate another run's kernel counters and stage timings
        (e.g. a per-K report's stats into the enclosing sweep's).

        Engine-level counters (work items, states explored, cache
        hits/misses) stay out: the enclosing run counts those itself
        and folding them in again would double-count."""
        if other is None:
            return
        self.metrics.merge_named(other.metrics, _CHILD_METRIC_SELECTORS)

    def merge(self, other: "EngineStats | None") -> None:
        """Fold *other* into this stats object wholesale (all counters
        and stage timings; ``jobs``/``parallel`` are left alone)."""
        if other is None:
            return
        self.metrics.merge(other.metrics)

    # -- export --------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict (flat counter names + stage timings), as
        embedded in ``repro verify --json`` / ``repro check --json``."""
        data: dict[str, Any] = {"jobs": self.jobs, "parallel": self.parallel}
        for name, metric in _COUNTER_METRICS.items():
            data[name] = self.metrics.value(metric)
        data["stage_seconds"] = dict(self.stage_seconds)
        data["total_seconds"] = self.total_seconds
        data["metrics"] = self.metrics.as_dict()
        return data

    def summary(self) -> str:
        """A one-line human-readable rendering for the CLI."""
        mode = (f"{self.jobs} jobs" if self.parallel
                else "serial" + (f" (jobs={self.jobs} requested)"
                                 if self.jobs > 1 else ""))
        parts = [f"engine: {mode}",
                 f"{self.work_items} work items",
                 f"{self.states_explored} states explored",
                 f"cache {self.cache_hits} hits / "
                 f"{self.cache_misses} misses"]
        if self.pool_fallbacks:
            parts.append(f"{self.pool_fallbacks} pool fallbacks")
        if (self.supervisor_timeouts or self.supervisor_retries
                or self.supervisor_degraded or self.supervisor_resumed):
            parts.append(
                f"supervisor {self.supervisor_timeouts} timeouts, "
                f"{self.supervisor_retries} retries, "
                f"{self.supervisor_degraded} degraded, "
                f"{self.supervisor_resumed} resumed")
        if self.scheduler_batches:
            parts.append(
                f"scheduler {self.scheduler_batches} batches "
                f"(mean {self.scheduler_batch_items / self.scheduler_batches:.1f}"
                f" items), {self.scheduler_steals} steals, "
                f"{self.scheduler_requeued} requeued")
        if self.states_encoded:
            kernel = (f"kernel compile {self.compile_seconds * 1e3:.1f} ms"
                      f", {self.states_encoded} states @ "
                      f"{self.encode_rate / 1e3:.0f}k states/s")
            if self.quotient_states:
                kernel += (f", quotient {self.quotient_states}/"
                           f"{self.quotient_full_states} "
                           f"({self.quotient_ratio:.1f}x)")
            parts.append(kernel)
        if self.mask_evaluations or self.skeleton_compiles:
            parts.append(
                f"localkernel {self.skeleton_compiles} skeletons, "
                f"{self.mask_evaluations} mask evals, "
                f"{self.trail_cache_hits} trail memo hits, "
                f"{self.verdict_cache_hits} verdict memo hits")
        if self.combos_pruned or self.full_evaluations:
            search = (f"synthsearch {self.combos_pruned} combos pruned / "
                      f"{self.full_evaluations} evaluated, "
                      f"{self.delta_reuses} delta reuses, "
                      f"{self.checkpoint_bytes / 1024:.1f} KiB checkpoints")
            if self.blocked_hits:
                search += f", {self.blocked_hits} blocked-mask hits"
            if self.board_loaded or self.board_published:
                search += (f", board {self.board_loaded} in / "
                           f"{self.board_published} out")
            parts.append(search)
        if (self.artifact_hits or self.artifact_misses
                or self.artifact_stores or self.artifact_corrupt):
            artifacts = (f"artifacts {self.artifact_hits} attached / "
                         f"{self.artifact_misses} misses, "
                         f"{self.artifact_stores} stored")
            if self.artifact_corrupt:
                artifacts += f", {self.artifact_corrupt} corrupt discarded"
            parts.append(artifacts)
        if self.fvs_nodes_explored:
            parts.append(f"fvs {self.fvs_nodes_explored} nodes "
                         f"({self.fvs_nodes_pruned} pruned)")
        if self.stage_seconds:
            stages = ", ".join(f"{name} {seconds * 1e3:.1f} ms"
                               for name, seconds
                               in self.stage_seconds.items())
            parts.append(stages)
        return "; ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EngineStats(jobs={self.jobs}, parallel={self.parallel}, "
                f"{self.metrics.as_dict()!r})")

    # -- pickling ------------------------------------------------------
    def __getstate__(self):
        return {"jobs": self.jobs, "parallel": self.parallel,
                "metrics": self.metrics}

    def __setstate__(self, state):
        object.__setattr__(self, "metrics",
                           state.get("metrics") or MetricsRegistry())
        object.__setattr__(self, "jobs", state.get("jobs", 1))
        object.__setattr__(self, "parallel", state.get("parallel", False))
        if "metrics" not in state:
            # Legacy pickle of the pre-registry dataclass (e.g. an old
            # on-disk cache entry): lift its flat fields into metrics.
            for name, metric in _COUNTER_METRICS.items():
                if state.get(name):
                    self.metrics.counter(metric).value = state[name]
            for name, seconds in (state.get("stage_seconds") or {}).items():
                self.metrics.counter(_STAGE_PREFIX + name).value = seconds
