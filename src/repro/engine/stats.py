"""Engine instrumentation: stage timings, work counts, cache counters.

An :class:`EngineStats` travels inside analysis reports (always as a
``compare=False`` field, so two runs with different timings still compare
equal on their verdicts) and is rendered by ``summary()`` for the CLI and
the benchmark artifacts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters for one engine-backed analysis run.

    Attributes
    ----------
    jobs:
        The requested degree of parallelism (1 = serial).
    parallel:
        Whether the process pool actually ran (``jobs > 1`` and more than
        one uncached work item on a platform with ``fork``).
    work_items:
        Independent work items executed this run (cache hits excluded).
    states_explored:
        Global states enumerated by freshly computed work items.
    cache_hits, cache_misses:
        Cache lookups answered / not answered during this run.
    stage_seconds:
        Wall time per named stage, e.g. ``{"sweep": 0.12}``.
    compile_seconds, encode_seconds, states_encoded:
        Kernel-backend counters: guard-compilation wall time, packed
        state-space build wall time, and states whose successor rows
        the kernel emitted (see :mod:`repro.engine.kernel`).
    quotient_states, quotient_full_states:
        When the rotation-symmetry quotient ran: orbit representatives
        kept vs. the full space they stand for.
    """

    jobs: int = 1
    parallel: bool = False
    work_items: int = 0
    states_explored: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    compile_seconds: float = 0.0
    encode_seconds: float = 0.0
    states_encoded: int = 0
    quotient_states: int = 0
    quotient_full_states: int = 0
    skeleton_compiles: int = 0
    mask_evaluations: int = 0
    trail_cache_hits: int = 0
    verdict_cache_hits: int = 0
    fvs_nodes_explored: int = 0
    fvs_nodes_pruned: int = 0
    """Local-kernel counters (:mod:`repro.engine.localkernel` and the
    branch-and-bound FVS search): compiled ``(K, |E|)`` skeletons,
    masked product-graph SCC passes, ``find_trail`` memo hits,
    synthesis verdicts answered from the combination memo, and FVS
    search-tree nodes explored / pruned."""

    @contextmanager
    def stage(self, name: str):
        """Time a ``with``-block and accumulate it under *name*."""
        began = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - began
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def encode_rate(self) -> float:
        """Kernel states-per-second (0 when the kernel never ran)."""
        if self.encode_seconds <= 0.0:
            return 0.0
        return self.states_encoded / self.encode_seconds

    @property
    def quotient_ratio(self) -> float:
        """Full states per kept orbit (0 when no quotient ran)."""
        if not self.quotient_states:
            return 0.0
        return self.quotient_full_states / self.quotient_states

    def absorb_kernel(self, kernel_stats) -> None:
        """Accumulate a :class:`repro.engine.kernel.KernelStats` (or
        ``None``, for naive-backend runs) into these counters."""
        if kernel_stats is None:
            return
        self.compile_seconds += kernel_stats.compile_seconds
        self.encode_seconds += kernel_stats.encode_seconds
        self.states_encoded += kernel_stats.states_encoded
        if kernel_stats.quotient_states:
            self.quotient_states += kernel_stats.quotient_states
            self.quotient_full_states += kernel_stats.full_states

    def absorb_localkernel(self, kernel_stats) -> None:
        """Accumulate a per-run
        :class:`repro.engine.localkernel.LocalKernelStats` delta (or
        ``None``, for naive-backend runs) into these counters."""
        if kernel_stats is None:
            return
        self.compile_seconds += kernel_stats.compile_seconds
        self.skeleton_compiles += kernel_stats.skeleton_compiles
        self.mask_evaluations += kernel_stats.mask_evaluations
        self.trail_cache_hits += kernel_stats.trail_cache_hits

    def absorb_fvs(self, fvs_stats) -> None:
        """Accumulate a :class:`repro.graphs.fvs.FvsStats` (or ``None``)
        into these counters."""
        if fvs_stats is None:
            return
        self.fvs_nodes_explored += fvs_stats.nodes_explored
        self.fvs_nodes_pruned += fvs_stats.nodes_pruned

    def merge_kernel_counters(self, other: "EngineStats | None") -> None:
        """Accumulate another run's kernel counters (e.g. a per-K
        report's stats into the enclosing sweep's)."""
        if other is None:
            return
        self.compile_seconds += other.compile_seconds
        self.encode_seconds += other.encode_seconds
        self.states_encoded += other.states_encoded
        self.quotient_states += other.quotient_states
        self.quotient_full_states += other.quotient_full_states
        self.skeleton_compiles += other.skeleton_compiles
        self.mask_evaluations += other.mask_evaluations
        self.trail_cache_hits += other.trail_cache_hits
        self.verdict_cache_hits += other.verdict_cache_hits
        self.fvs_nodes_explored += other.fvs_nodes_explored
        self.fvs_nodes_pruned += other.fvs_nodes_pruned

    def summary(self) -> str:
        """A one-line human-readable rendering for the CLI."""
        mode = (f"{self.jobs} jobs" if self.parallel
                else "serial" + (f" (jobs={self.jobs} requested)"
                                 if self.jobs > 1 else ""))
        parts = [f"engine: {mode}",
                 f"{self.work_items} work items",
                 f"{self.states_explored} states explored",
                 f"cache {self.cache_hits} hits / "
                 f"{self.cache_misses} misses"]
        if self.states_encoded:
            kernel = (f"kernel compile {self.compile_seconds * 1e3:.1f} ms"
                      f", {self.states_encoded} states @ "
                      f"{self.encode_rate / 1e3:.0f}k states/s")
            if self.quotient_states:
                kernel += (f", quotient {self.quotient_states}/"
                           f"{self.quotient_full_states} "
                           f"({self.quotient_ratio:.1f}x)")
            parts.append(kernel)
        if self.mask_evaluations or self.skeleton_compiles:
            parts.append(
                f"localkernel {self.skeleton_compiles} skeletons, "
                f"{self.mask_evaluations} mask evals, "
                f"{self.trail_cache_hits} trail memo hits, "
                f"{self.verdict_cache_hits} verdict memo hits")
        if self.fvs_nodes_explored:
            parts.append(f"fvs {self.fvs_nodes_explored} nodes "
                         f"({self.fvs_nodes_pruned} pruned)")
        if self.stage_seconds:
            stages = ", ".join(f"{name} {seconds * 1e3:.1f} ms"
                               for name, seconds
                               in self.stage_seconds.items())
            parts.append(stages)
        return "; ".join(parts)
