"""Content-addressed result cache: in-memory layer + optional disk layer.

Keys are the hex digests produced by :func:`repro.engine.fingerprint
.analysis_key`; values are whole analysis reports (picklable frozen
dataclasses).  The in-memory layer serves repeats within one process;
the disk layer (``.repro-cache/`` by default) serves repeated CLI and
benchmark invocations.

Disk entries are self-verifying: the file stores the SHA-256 of the
pickled payload ahead of the payload itself, so a truncated, bit-rotted
or hand-edited entry is detected, counted, deleted and treated as a
plain miss — corruption never raises out of :meth:`ResultCache.get`.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.artifacts import (
    ARTIFACT_SUFFIX,
    directory_bytes,
    enforce_directory_limit,
)
from repro.obs import runtime as obs

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_CACHE_LIMIT = 1 << 30  # 1 GiB, shared with the artifact store
ENTRY_SUFFIX = ".pkl"

#: Disk stores between LRU size-cap sweeps (a sweep stats every cached
#: file, so enforcing on every put would be quadratic in cache size).
_SWEEP_INTERVAL = 32

_MISS = object()


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    corrupt_entries: int = 0
    evictions: int = 0

    def summary(self) -> str:
        return (f"cache: {self.hits} hits ({self.disk_hits} from disk), "
                f"{self.misses} misses, {self.stores} stores, "
                f"{self.corrupt_entries} corrupt entries discarded")


class ResultCache:
    """A two-layer (memory, optional disk) content-addressed cache.

    Parameters
    ----------
    directory:
        Root of the on-disk layer; ``None`` keeps the cache purely
        in-memory.  The directory is created lazily on the first store.
    limit_bytes:
        Size cap of the disk layer (LRU-by-mtime eviction; the artifact
        store under the same root is capped by the same budget at the
        CLI layer).  ``None`` leaves the layer unbounded.
    """

    def __init__(self, directory: str | Path | None = None,
                 limit_bytes: int | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.limit_bytes = limit_bytes
        self._memory: dict[str, Any] = {}
        self._stores_since_sweep = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for *key*, or *default* on a miss."""
        value = self._memory.get(key, _MISS)
        if value is _MISS and self.directory is not None:
            value = self._read_disk(key)
            if value is not _MISS:
                self._memory[key] = value
                self.stats.disk_hits += 1
                obs.metric("cache.disk_hits")
        if value is _MISS:
            self.stats.misses += 1
            obs.metric("cache.misses")
            return default
        self.stats.hits += 1
        obs.metric("cache.hits")
        return value

    def __contains__(self, key: str) -> bool:
        return (key in self._memory
                or (self.directory is not None
                    and self._entry_path(key).exists()))

    def put(self, key: str, value: Any) -> None:
        """Store *value* in both layers (disk failures are non-fatal)."""
        self._memory[key] = value
        self.stats.stores += 1
        obs.metric("cache.stores")
        if self.directory is None:
            return
        try:
            payload = pickle.dumps(value)
        except Exception:
            return  # memory-only for unpicklable values
        digest = hashlib.sha256(payload).hexdigest()
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temporary = path.with_suffix(".tmp")
            temporary.write_bytes(digest.encode("ascii") + b"\n" + payload)
            temporary.replace(path)  # atomic within a filesystem
        except OSError:
            return
        self._stores_since_sweep += 1
        if (self.limit_bytes is not None
                and self._stores_since_sweep >= _SWEEP_INTERVAL):
            self.enforce_limit()

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the disk layer stays intact)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def disk_bytes(self) -> int:
        """Total size of the disk layer's entries (0 when memory-only)."""
        if self.directory is None:
            return 0
        return directory_bytes(self.directory, suffix=ENTRY_SUFFIX)

    def enforce_limit(self, limit_bytes: int | None = None) -> int:
        """LRU-by-mtime eviction down to the size cap; returns removals.

        Only ``.pkl`` entries are candidates — journals and artifacts
        sharing the cache root are never touched here (the artifact
        store runs its own sweep against the shared budget).
        """
        limit = self.limit_bytes if limit_bytes is None else limit_bytes
        if self.directory is None or limit is None:
            return 0
        self._stores_since_sweep = 0
        removed = enforce_directory_limit(self.directory, limit,
                                          suffix=ENTRY_SUFFIX)
        if removed:
            self.stats.evictions += removed
            obs.metric("cache.evictions", removed)
        return removed

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.pkl"

    def _read_disk(self, key: str) -> Any:
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return _MISS
        try:
            digest, _, payload = raw.partition(b"\n")
            if digest.decode("ascii") != hashlib.sha256(payload).hexdigest():
                raise ValueError("checksum mismatch")
            return pickle.loads(payload)
        except Exception:
            # Corrupted entry: count it, drop it, report a miss.
            self.stats.corrupt_entries += 1
            obs.metric("cache.corrupt_entries")
            try:
                path.unlink()
            except OSError:
                pass
            return _MISS
