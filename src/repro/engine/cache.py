"""Content-addressed result cache: in-memory layer + optional disk layer.

Keys are the hex digests produced by :func:`repro.engine.fingerprint
.analysis_key`; values are whole analysis reports (picklable frozen
dataclasses).  The in-memory layer serves repeats within one process;
the disk layer (``.repro-cache/`` by default) serves repeated CLI and
benchmark invocations.

Disk entries are self-verifying: the file stores the SHA-256 of the
pickled payload ahead of the payload itself, so a truncated, bit-rotted
or hand-edited entry is detected, counted, deleted and treated as a
plain miss — corruption never raises out of :meth:`ResultCache.get`.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

DEFAULT_CACHE_DIR = ".repro-cache"

_MISS = object()


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    corrupt_entries: int = 0

    def summary(self) -> str:
        return (f"cache: {self.hits} hits ({self.disk_hits} from disk), "
                f"{self.misses} misses, {self.stores} stores, "
                f"{self.corrupt_entries} corrupt entries discarded")


class ResultCache:
    """A two-layer (memory, optional disk) content-addressed cache.

    Parameters
    ----------
    directory:
        Root of the on-disk layer; ``None`` keeps the cache purely
        in-memory.  The directory is created lazily on the first store.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, Any] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for *key*, or *default* on a miss."""
        value = self._memory.get(key, _MISS)
        if value is _MISS and self.directory is not None:
            value = self._read_disk(key)
            if value is not _MISS:
                self._memory[key] = value
                self.stats.disk_hits += 1
        if value is _MISS:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return value

    def __contains__(self, key: str) -> bool:
        return (key in self._memory
                or (self.directory is not None
                    and self._entry_path(key).exists()))

    def put(self, key: str, value: Any) -> None:
        """Store *value* in both layers (disk failures are non-fatal)."""
        self._memory[key] = value
        self.stats.stores += 1
        if self.directory is None:
            return
        try:
            payload = pickle.dumps(value)
        except Exception:
            return  # memory-only for unpicklable values
        digest = hashlib.sha256(payload).hexdigest()
        path = self._entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            temporary = path.with_suffix(".tmp")
            temporary.write_bytes(digest.encode("ascii") + b"\n" + payload)
            temporary.replace(path)  # atomic within a filesystem
        except OSError:
            pass

    def clear_memory(self) -> None:
        """Drop the in-memory layer (the disk layer stays intact)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.pkl"

    def _read_disk(self, key: str) -> Any:
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return _MISS
        try:
            digest, _, payload = raw.partition(b"\n")
            if digest.decode("ascii") != hashlib.sha256(payload).hexdigest():
                raise ValueError("checksum mismatch")
            return pickle.loads(payload)
        except Exception:
            # Corrupted entry: count it, drop it, report a miss.
            self.stats.corrupt_entries += 1
            try:
                path.unlink()
            except OSError:
                pass
            return _MISS
