"""Concrete ring instances ``p(K)``.

A global state of ``p(K)`` is a tuple of ``K`` cells, cell ``r`` holding the
owned-variable values of process ``P_r``.  The instance exposes the global
transition relation under interleaving semantics: each global transition is
one process executing one enabled action atomically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, Iterator

from repro.errors import ProtocolDefinitionError
from repro.protocol.localstate import Cell, LocalState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol

GlobalState = tuple
"""A global state: tuple of K cells."""


@dataclass(frozen=True)
class Move:
    """One enabled global transition: process *r* runs *action* and the
    ring moves to *target*."""

    process: int
    action: str
    target: GlobalState


class RingInstance:
    """The protocol instance with a fixed number of processes."""

    def __init__(self, protocol: "RingProtocol", size: int) -> None:
        if size < protocol.process.window_width:
            raise ProtocolDefinitionError(
                f"ring size {size} smaller than the read window "
                f"({protocol.process.window_width}); the instance would be "
                f"degenerate")
        self.protocol = protocol
        self.size = size
        self._space = protocol.space

    # ------------------------------------------------------------------
    # State enumeration
    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        """``|S_p(K)|`` — the number of global states."""
        return len(self._space.cells) ** self.size

    def states(self) -> Iterator[GlobalState]:
        """Iterate over every global state (lazily)."""
        return product(self._space.cells, repeat=self.size)

    def state_of(self, *cells: object) -> GlobalState:
        """Build a global state from one value/cell per process."""
        if len(cells) != self.size:
            raise ProtocolDefinitionError(
                f"expected {self.size} cells, got {len(cells)}")
        return tuple(self._space._normalize_cell(c) for c in cells)

    def uniform_state(self, cell: object) -> GlobalState:
        """The global state assigning the same cell to every process."""
        normalized = self._space._normalize_cell(cell)
        return tuple(normalized for _ in range(self.size))

    # ------------------------------------------------------------------
    # Local projections
    # ------------------------------------------------------------------
    def local_state(self, state: GlobalState, process: int) -> LocalState:
        """The projection of *state* on the read window of ``P_process``."""
        offsets = self.protocol.process.window_offsets
        cells = tuple(state[(process + o) % self.size] for o in offsets)
        return LocalState(cells, self.protocol.process.reads_left)

    def local_states(self, state: GlobalState) -> list[LocalState]:
        """Local states of every process, by ring position."""
        return [self.local_state(state, r) for r in range(self.size)]

    # ------------------------------------------------------------------
    # Transition relation
    # ------------------------------------------------------------------
    def moves_of(self, state: GlobalState, process: int) -> list[Move]:
        """Enabled moves of one process at *state*."""
        local = self.local_state(state, process)
        moves = []
        for action in self._space.enabled_actions(local):
            for target_local in self._space.targets(local, action):
                cells = list(state)
                cells[process] = target_local.own
                moves.append(Move(process, action.name, tuple(cells)))
        return moves

    def moves(self, state: GlobalState) -> list[Move]:
        """All enabled moves at *state*, over all processes."""
        result = []
        for process in range(self.size):
            result.extend(self.moves_of(state, process))
        return result

    def successors(self, state: GlobalState) -> list[GlobalState]:
        """Distinct successor states of *state*, first-seen order."""
        seen: set[GlobalState] = set()
        ordered = []
        for move in self.moves(state):
            if move.target not in seen:
                seen.add(move.target)
                ordered.append(move.target)
        return ordered

    def enabled_processes(self, state: GlobalState) -> list[int]:
        """Ring positions whose process has an enabled action."""
        return [r for r in range(self.size)
                if self._space.is_enabled(self.local_state(state, r))]

    def is_deadlock(self, state: GlobalState) -> bool:
        """Whether no process is enabled at *state*."""
        return not self.enabled_processes(state)

    # ------------------------------------------------------------------
    # Invariant
    # ------------------------------------------------------------------
    def invariant_holds(self, state: GlobalState) -> bool:
        """Whether ``I(K) = ∧_r LC_r`` holds at *state*."""
        return all(self.protocol.is_legitimate(self.local_state(state, r))
                   for r in range(self.size))

    def corrupted_processes(self, state: GlobalState) -> list[int]:
        """Positions whose local state violates ``LC_r``."""
        return [r for r in range(self.size)
                if not self.protocol.is_legitimate(self.local_state(state, r))]

    def invariant_states(self) -> Iterator[GlobalState]:
        """All global states inside ``I(K)``."""
        return (s for s in self.states() if self.invariant_holds(s))

    # ------------------------------------------------------------------
    def format_state(self, state: GlobalState) -> str:
        """Compact rendering, e.g. ``(l s r l s)`` for matching rings."""
        def fmt(cell: Cell) -> str:
            parts = [str(v)[0] if isinstance(v, str) else str(v)
                     for v in cell]
            return "".join(parts)

        return "(" + " ".join(fmt(c) for c in state) + ")"

    def __repr__(self) -> str:
        return f"RingInstance({self.protocol.name!r}, K={self.size})"
