"""Local states, local views and the local state space of a process.

A *local state* of the representative process ``P_r`` is a valuation of the
variables ``P_r`` can read (Section 2.1).  With a contiguous read window of
offsets ``-left .. +right`` around the process, a local state is a tuple of
*cells*, one cell per window position, where a cell is the tuple of values
of the variables owned by the process at that position.

Example (maximal matching, bidirectional, single variable ``m``)::

    window offsets : -1        0         +1
    local state    : (("left",), ("left",), ("self",))   # ⟨l, l, s⟩
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import DomainError, ProtocolDefinitionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.protocol.actions import Action, LocalTransition
    from repro.protocol.process import ProcessTemplate

Cell = tuple
"""Values of the owned variables of one process, in declaration order."""


@dataclass(frozen=True)
class LocalState:
    """An immutable valuation of a process's read window.

    ``cells[i]`` holds the owned-variable values of the process at window
    offset ``i - left``.  Instances are hashable and order-comparable (by
    cell tuples), so they can serve directly as graph vertices.
    """

    cells: tuple[Cell, ...]
    left: int

    def cell(self, offset: int) -> Cell:
        """The cell at window *offset* (0 = the process itself)."""
        position = offset + self.left
        if not 0 <= position < len(self.cells):
            raise ProtocolDefinitionError(
                f"offset {offset} outside the read window "
                f"[{-self.left}..{len(self.cells) - 1 - self.left}]")
        return self.cells[position]

    @property
    def own(self) -> Cell:
        """The process's own (writable) cell — offset 0."""
        return self.cells[self.left]

    def replace_own(self, cell: Cell) -> "LocalState":
        """A copy of this state with the offset-0 cell replaced."""
        cells = list(self.cells)
        cells[self.left] = cell
        return LocalState(tuple(cells), self.left)

    @property
    def offsets(self) -> range:
        """The window offsets this state covers."""
        return range(-self.left, len(self.cells) - self.left)

    def __lt__(self, other: "LocalState") -> bool:
        return self.cells < other.cells

    def __str__(self) -> str:
        def fmt(cell: Cell) -> str:
            inner = ",".join(str(v) for v in cell)
            return inner if len(cell) == 1 else f"({inner})"

        return "⟨" + " ".join(fmt(c) for c in self.cells) + "⟩"


class LocalView:
    """Read access to a local state for guard/effect callables.

    * ``view[offset]`` — value of the **single** owned variable at *offset*
      (only valid for one-variable processes, which covers every protocol in
      the paper);
    * ``view.get(name, offset=0)`` — value of variable *name* at *offset*;
    * ``view.cell(offset)`` — the full cell tuple.
    """

    __slots__ = ("_state", "_positions")

    def __init__(self, state: LocalState, positions: dict[str, int]) -> None:
        self._state = state
        self._positions = positions

    def __getitem__(self, offset: int) -> object:
        cell = self._state.cell(offset)
        if len(cell) != 1:
            raise ProtocolDefinitionError(
                "view[offset] is only defined for single-variable processes;"
                " use view.get(name, offset)")
        return cell[0]

    def get(self, name: str, offset: int = 0) -> object:
        """Value of variable *name* at window *offset*."""
        try:
            position = self._positions[name]
        except KeyError:
            raise ProtocolDefinitionError(
                f"unknown variable {name!r}") from None
        return self._state.cell(offset)[position]

    def cell(self, offset: int) -> Cell:
        """The full cell tuple at *offset*."""
        return self._state.cell(offset)

    @property
    def state(self) -> LocalState:
        """The underlying local state."""
        return self._state

    @property
    def offsets(self) -> range:
        """The window offsets available to this view."""
        return self._state.offsets


class LocalStateSpace:
    """The finite local state space ``S_r^l`` of a representative process.

    Enumerates all local states (the product of owned-cell valuations over
    the read window), evaluates actions to produce the local transition set
    ``δ_r``, and implements the right-continuation relation of
    Definition 4.1.
    """

    def __init__(self, process: "ProcessTemplate") -> None:
        self.process = process
        self._positions = {v.name: i
                           for i, v in enumerate(process.variables)}
        self._states: tuple[LocalState, ...] | None = None
        self._index: dict[LocalState, int] | None = None
        self._transitions: tuple["LocalTransition", ...] | None = None

    # ------------------------------------------------------------------
    # State enumeration
    # ------------------------------------------------------------------
    @property
    def cells(self) -> tuple[Cell, ...]:
        """All possible cells (valuations of the owned variables)."""
        domains = [v.domain for v in self.process.variables]
        return tuple(product(*domains))

    @property
    def states(self) -> tuple[LocalState, ...]:
        """All local states, in a fixed deterministic order."""
        if self._states is None:
            width = self.process.window_width
            left = self.process.reads_left
            self._states = tuple(
                LocalState(combo, left)
                for combo in product(self.cells, repeat=width))
        return self._states

    def index(self, state: LocalState) -> int:
        """Position of *state* in :attr:`states`."""
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.states)}
        return self._index[state]

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self) -> Iterator[LocalState]:
        return iter(self.states)

    def view(self, state: LocalState) -> LocalView:
        """A :class:`LocalView` over *state*."""
        return LocalView(state, self._positions)

    def state_of(self, *cells: object) -> LocalState:
        """Build a local state from per-offset values, left to right.

        Each argument is either a bare value (single-variable processes) or
        a cell tuple.  ``state_of("left", "left", "self")`` builds the
        matching state ⟨l,l,s⟩.
        """
        if len(cells) != self.process.window_width:
            raise ProtocolDefinitionError(
                f"expected {self.process.window_width} cells, "
                f"got {len(cells)}")
        normalized = tuple(self._normalize_cell(c) for c in cells)
        return LocalState(normalized, self.process.reads_left)

    def _normalize_cell(self, cell: object) -> Cell:
        variables = self.process.variables
        if not isinstance(cell, tuple):
            cell = (cell,)
        if len(cell) != len(variables):
            raise ProtocolDefinitionError(
                f"cell {cell!r} does not match the {len(variables)} owned "
                f"variable(s)")
        for value, variable in zip(cell, variables):
            if value not in variable:
                raise DomainError(
                    f"{value!r} is not in the domain of {variable.name!r}")
        return cell

    # ------------------------------------------------------------------
    # Action semantics
    # ------------------------------------------------------------------
    def enabled_actions(self, state: LocalState) -> list["Action"]:
        """Actions whose guard holds at *state*."""
        view = self.view(state)
        return [a for a in self.process.actions if a.guard(view)]

    def is_enabled(self, state: LocalState) -> bool:
        """Whether any action is enabled at *state* (an *enablement*)."""
        view = self.view(state)
        return any(a.guard(view) for a in self.process.actions)

    def is_deadlock(self, state: LocalState) -> bool:
        """Whether *state* is a local deadlock (no action enabled)."""
        return not self.is_enabled(state)

    def targets(self, state: LocalState, action: "Action") -> list[LocalState]:
        """Local states reachable from *state* by one execution of *action*.

        Nondeterministic effects yield several targets.  Writes that leave
        the owned cell unchanged are dropped: they are global stutters and
        the paper's transition model (a local transition changes ``W_r``)
        excludes them.
        """
        view = self.view(state)
        results = []
        for cell in action.result_cells(view, self._normalize_cell):
            if cell != state.own:
                results.append(state.replace_own(cell))
        return results

    @property
    def transitions(self) -> tuple["LocalTransition", ...]:
        """The local transition set ``δ_r`` induced by the actions.

        Transitions are deduplicated by (source, target); when several
        actions induce the same state change the labels are joined with
        ``+`` (the pair of states *is* the transition in the paper's
        formalism — labels are provenance only).
        """
        from repro.protocol.actions import LocalTransition

        if self._transitions is None:
            merged: dict[tuple[LocalState, LocalState], list[str]] = {}
            for state in self.states:
                view = self.view(state)
                for action in self.process.actions:
                    if not action.guard(view):
                        continue
                    for target in self.targets(state, action):
                        key = (state, target)
                        merged.setdefault(key, [])
                        if action.name not in merged[key]:
                            merged[key].append(action.name)
            self._transitions = tuple(
                LocalTransition(source, target, "+".join(labels))
                for (source, target), labels in merged.items())
        return self._transitions

    # ------------------------------------------------------------------
    # Continuation relation (Definition 4.1)
    # ------------------------------------------------------------------
    def continues(self, state: LocalState, candidate: LocalState) -> bool:
        """Whether *candidate* is a right continuation of *state*.

        ``candidate`` (a local state of ``P_{r+1}``) continues ``state``
        (of ``P_r``) iff they agree on every ring position both windows
        read: for every offset ``o`` with ``o-1`` also in the window,
        ``state.cell(o) == candidate.cell(o-1)``.
        """
        offsets = self.process.window_offsets
        for offset in offsets:
            if offset - 1 in offsets:
                if state.cell(offset) != candidate.cell(offset - 1):
                    return False
        return True

    def right_continuations(self, state: LocalState) -> list[LocalState]:
        """All right continuations of *state*."""
        return [s for s in self.states if self.continues(state, s)]

    # ------------------------------------------------------------------
    # Deadlock / legitimacy partitions
    # ------------------------------------------------------------------
    def deadlocks(self) -> tuple[LocalState, ...]:
        """All local deadlock states."""
        return tuple(s for s in self.states if self.is_deadlock(s))

    def partition(self, predicate: Callable[[LocalView], bool],
                  ) -> tuple[tuple[LocalState, ...], tuple[LocalState, ...]]:
        """Split the space into (satisfying, violating) for *predicate*."""
        good, bad = [], []
        for state in self.states:
            (good if predicate(self.view(state)) else bad).append(state)
        return tuple(good), tuple(bad)
