"""Concrete instances on rooted trees (parent-reading processes).

Definition 4.1's closing note sketches how the continuation relation
extends beyond rings: "we construct RCG of a tree from the locality of a
non-root process".  For processes that read *parent and self* (the same
window as a unidirectional chain), a tree instance is straightforward:
every node evaluates the template's guarded commands against its
parent's cell (the root reads the protocol's left boundary), and the
invariant is the conjunction of ``LC_r`` over all nodes.

Shapes are given as a parent vector: ``parents[i]`` is the index of
node *i*'s parent, or ``None`` for the root.  :mod:`repro.core.trees`
provides the exact per-shape deadlock analysis.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence

from repro.errors import ProtocolDefinitionError, TopologyError
from repro.protocol.chain import ChainProtocol
from repro.protocol.instance import Move
from repro.protocol.localstate import Cell, LocalState

GlobalState = tuple


def validate_parents(parents: Sequence[int | None]) -> int:
    """Check the parent vector describes one rooted tree; returns the
    root index."""
    roots = [i for i, parent in enumerate(parents) if parent is None]
    if len(roots) != 1:
        raise ProtocolDefinitionError(
            f"a tree needs exactly one root, got {len(roots)}")
    root = roots[0]
    for i, parent in enumerate(parents):
        if parent is None:
            continue
        if not 0 <= parent < len(parents):
            raise ProtocolDefinitionError(
                f"node {i} has out-of-range parent {parent}")
        # walk to the root; cycles would loop forever without this bound
        seen = set()
        current: int | None = i
        while current is not None:
            if current in seen:
                raise ProtocolDefinitionError(
                    f"parent vector has a cycle through node {current}")
            seen.add(current)
            current = parents[current]
    return root


class TreeInstance:
    """A protocol instance over one tree shape.

    Built from a :class:`~repro.protocol.chain.ChainProtocol` (which
    carries the boundary the root reads) and a parent vector.  Only
    parent-reading (unidirectional) templates are supported.
    """

    def __init__(self, protocol: ChainProtocol,
                 parents: Sequence[int | None]) -> None:
        if not protocol.unidirectional:
            raise TopologyError(
                "tree instances support parent-reading (unidirectional) "
                "process templates only")
        if protocol.process.reads_left != 1:
            raise TopologyError(
                "tree instances need a window of exactly (parent, self)")
        self.protocol = protocol
        self.parents = tuple(parents)
        self.root = validate_parents(self.parents)
        self.size = len(self.parents)
        self._space = protocol.space

    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._space.cells) ** self.size

    def states(self) -> Iterator[GlobalState]:
        return product(self._space.cells, repeat=self.size)

    def state_of(self, *cells: object) -> GlobalState:
        if len(cells) != self.size:
            raise ProtocolDefinitionError(
                f"expected {self.size} cells, got {len(cells)}")
        return tuple(self._space._normalize_cell(c) for c in cells)

    def children_of(self, node: int) -> list[int]:
        return [i for i, parent in enumerate(self.parents)
                if parent == node]

    def depth_of(self, node: int) -> int:
        depth = 0
        current = self.parents[node]
        while current is not None:
            depth += 1
            current = self.parents[current]
        return depth

    # ------------------------------------------------------------------
    def local_state(self, state: GlobalState, node: int) -> LocalState:
        parent = self.parents[node]
        parent_cell: Cell = (self.protocol.left_boundary
                             if parent is None else state[parent])
        return LocalState((parent_cell, state[node]), 1)

    def local_states(self, state: GlobalState) -> list[LocalState]:
        return [self.local_state(state, n) for n in range(self.size)]

    def moves_of(self, state: GlobalState, node: int) -> list[Move]:
        local = self.local_state(state, node)
        moves = []
        for action in self._space.enabled_actions(local):
            for target_local in self._space.targets(local, action):
                cells = list(state)
                cells[node] = target_local.own
                moves.append(Move(node, action.name, tuple(cells)))
        return moves

    def moves(self, state: GlobalState) -> list[Move]:
        result = []
        for node in range(self.size):
            result.extend(self.moves_of(state, node))
        return result

    def successors(self, state: GlobalState) -> list[GlobalState]:
        seen = []
        for move in self.moves(state):
            if move.target not in seen:
                seen.append(move.target)
        return seen

    def enabled_processes(self, state: GlobalState) -> list[int]:
        return [n for n in range(self.size)
                if self._space.is_enabled(self.local_state(state, n))]

    def is_deadlock(self, state: GlobalState) -> bool:
        return not self.enabled_processes(state)

    def invariant_holds(self, state: GlobalState) -> bool:
        return all(self.protocol.is_legitimate(self.local_state(state, n))
                   for n in range(self.size))

    def corrupted_processes(self, state: GlobalState) -> list[int]:
        return [n for n in range(self.size)
                if not self.protocol.is_legitimate(
                    self.local_state(state, n))]

    def invariant_states(self) -> Iterator[GlobalState]:
        return (s for s in self.states() if self.invariant_holds(s))

    def format_state(self, state: GlobalState) -> str:
        def fmt(cell: Cell) -> str:
            return "".join(str(v)[0] if isinstance(v, str) else str(v)
                           for v in cell)

        parts = []
        for node, cell in enumerate(state):
            parent = self.parents[node]
            tag = "r" if parent is None else str(parent)
            parts.append(f"{node}<{tag}:{fmt(cell)}")
        return "{" + " ".join(parts) + "}"

    def __repr__(self) -> str:
        return (f"TreeInstance({self.protocol.name!r}, "
                f"nodes={self.size}, root={self.root})")
