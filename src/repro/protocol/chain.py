"""Parameterized protocols on open chains (linear arrays).

The paper notes (after Definition 4.1) that the continuation relation
"naturally extends to network topologies other than rings", and lists
non-ring topologies as future work; acyclic topologies are also the
setting where circulating corruptions — the hard part of rings — cannot
occur.  This module instantiates that extension for the simplest acyclic
topology, the **chain** ``P_0 — P_1 — … — P_{K-1}``:

* the process template and legitimacy constraint are exactly those of
  ring protocols;
* positions past either end of the chain read fixed *boundary cells*
  (a virtual process ``P_{-1}`` holding ``left_boundary`` and, for
  processes that read successors, a virtual ``P_K`` holding
  ``right_boundary``), so every process still evaluates the same guarded
  commands over a full window.

With this convention, a global chain state of size K corresponds to a
length-K *walk* of the ring RCG whose first (last) vertex agrees with
the left (right) boundary — which is what makes the exact chain deadlock
analysis of :mod:`repro.core.chains` work.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.errors import ProtocolDefinitionError
from repro.protocol.instance import Move
from repro.protocol.localstate import Cell, LocalState
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import Legitimacy, RingProtocol

GlobalState = tuple


class ChainProtocol:
    """A parameterized protocol on an open chain, for all K.

    Parameters mirror :class:`~repro.protocol.ring.RingProtocol`, plus
    the boundary cells.  Boundary values must come from the declared
    variable domains (add a sentinel value to the domain if the boundary
    should be distinguishable from real states).
    """

    def __init__(self, name: str, process: ProcessTemplate,
                 legitimacy: Legitimacy,
                 left_boundary: object = None,
                 right_boundary: object = None,
                 description: str = "") -> None:
        # Reuse the ring machinery for the local space and legitimacy.
        self._core = RingProtocol(name, process, legitimacy,
                                  description=description)
        space = self._core.space
        if process.reads_left > 0:
            if left_boundary is None:
                raise ProtocolDefinitionError(
                    "chain processes read predecessors: left_boundary "
                    "required")
            self.left_boundary: Cell | None = \
                space._normalize_cell(left_boundary)
        else:
            self.left_boundary = None
        if process.reads_right > 0:
            if right_boundary is None:
                raise ProtocolDefinitionError(
                    "chain processes read successors: right_boundary "
                    "required")
            self.right_boundary: Cell | None = \
                space._normalize_cell(right_boundary)
        else:
            self.right_boundary = None

    # Delegation ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self._core.name

    @name.setter
    def name(self, value: str) -> None:
        self._core.name = value

    @property
    def description(self) -> str:
        return self._core.description

    @property
    def process(self) -> ProcessTemplate:
        return self._core.process

    @property
    def space(self):
        return self._core.space

    @property
    def legitimacy(self):
        return self._core.legitimacy

    @property
    def unidirectional(self) -> bool:
        return self._core.unidirectional

    def is_legitimate(self, state: LocalState) -> bool:
        return self._core.is_legitimate(state)

    def legitimate_states(self):
        return self._core.legitimate_states()

    def illegitimate_states(self):
        return self._core.illegitimate_states()

    def pretty(self) -> str:
        text = self._core.pretty().replace(" ring)", " chain)")
        boundaries = []
        if self.left_boundary is not None:
            boundaries.append(f"left boundary = {self.left_boundary}")
        if self.right_boundary is not None:
            boundaries.append(f"right boundary = {self.right_boundary}")
        return text + "\n  " + ", ".join(boundaries)

    # ------------------------------------------------------------------
    def boundary_consistent_left(self, state: LocalState) -> bool:
        """Whether *state* can be the local state of ``P_0``: every
        negative-offset cell equals the left boundary."""
        return all(state.cell(o) == self.left_boundary
                   for o in state.offsets if o < 0)

    def boundary_consistent_right(self, state: LocalState) -> bool:
        """Whether *state* can be the local state of ``P_{K-1}``."""
        return all(state.cell(o) == self.right_boundary
                   for o in state.offsets if o > 0)

    def instantiate(self, size: int) -> "ChainInstance":
        """The concrete chain with *size* processes."""
        return ChainInstance(self, size)

    def extended_with(self, actions, name: str | None = None,
                      ) -> "ChainProtocol":
        """A chain protocol with *actions* added (synthesis output)."""
        clone = ChainProtocol.__new__(ChainProtocol)
        clone._core = self._core.extended_with(actions, name=name)
        clone.left_boundary = self.left_boundary
        clone.right_boundary = self.right_boundary
        return clone

    def __repr__(self) -> str:
        return (f"ChainProtocol({self.name!r}, "
                f"actions={len(self.process.actions)})")


class ChainInstance:
    """A concrete chain of K processes (duck-type compatible with
    :class:`~repro.protocol.instance.RingInstance`)."""

    def __init__(self, protocol: ChainProtocol, size: int) -> None:
        if size < 1:
            raise ProtocolDefinitionError("chains need >= 1 process")
        self.protocol = protocol
        self.size = size
        self._space = protocol.space

    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._space.cells) ** self.size

    def states(self) -> Iterator[GlobalState]:
        return product(self._space.cells, repeat=self.size)

    def state_of(self, *cells: object) -> GlobalState:
        if len(cells) != self.size:
            raise ProtocolDefinitionError(
                f"expected {self.size} cells, got {len(cells)}")
        return tuple(self._space._normalize_cell(c) for c in cells)

    def uniform_state(self, cell: object) -> GlobalState:
        normalized = self._space._normalize_cell(cell)
        return tuple(normalized for _ in range(self.size))

    # ------------------------------------------------------------------
    def local_state(self, state: GlobalState, process: int) -> LocalState:
        offsets = self.protocol.process.window_offsets
        cells = []
        for offset in offsets:
            position = process + offset
            if position < 0:
                cells.append(self.protocol.left_boundary)
            elif position >= self.size:
                cells.append(self.protocol.right_boundary)
            else:
                cells.append(state[position])
        return LocalState(tuple(cells), self.protocol.process.reads_left)

    def local_states(self, state: GlobalState) -> list[LocalState]:
        return [self.local_state(state, r) for r in range(self.size)]

    # ------------------------------------------------------------------
    def moves_of(self, state: GlobalState, process: int) -> list[Move]:
        local = self.local_state(state, process)
        moves = []
        for action in self._space.enabled_actions(local):
            for target_local in self._space.targets(local, action):
                cells = list(state)
                cells[process] = target_local.own
                moves.append(Move(process, action.name, tuple(cells)))
        return moves

    def moves(self, state: GlobalState) -> list[Move]:
        result = []
        for process in range(self.size):
            result.extend(self.moves_of(state, process))
        return result

    def successors(self, state: GlobalState) -> list[GlobalState]:
        seen = []
        for move in self.moves(state):
            if move.target not in seen:
                seen.append(move.target)
        return seen

    def enabled_processes(self, state: GlobalState) -> list[int]:
        return [r for r in range(self.size)
                if self._space.is_enabled(self.local_state(state, r))]

    def is_deadlock(self, state: GlobalState) -> bool:
        return not self.enabled_processes(state)

    # ------------------------------------------------------------------
    def invariant_holds(self, state: GlobalState) -> bool:
        return all(self.protocol.is_legitimate(self.local_state(state, r))
                   for r in range(self.size))

    def corrupted_processes(self, state: GlobalState) -> list[int]:
        return [r for r in range(self.size)
                if not self.protocol.is_legitimate(
                    self.local_state(state, r))]

    def invariant_states(self) -> Iterator[GlobalState]:
        return (s for s in self.states() if self.invariant_holds(s))

    def format_state(self, state: GlobalState) -> str:
        def fmt(cell: Cell) -> str:
            return "".join(str(v)[0] if isinstance(v, str) else str(v)
                           for v in cell)

        return "[" + " ".join(fmt(c) for c in state) + "]"

    def __repr__(self) -> str:
        return f"ChainInstance({self.protocol.name!r}, K={self.size})"
