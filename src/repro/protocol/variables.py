"""Finite-domain variables.

Each process of a parameterized ring owns one instance of every declared
variable; the instance owned by process ``P_i`` of variable ``x`` plays the
role of the paper's ``x_i``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolDefinitionError


@dataclass(frozen=True)
class Variable:
    """A named variable with a finite, ordered domain.

    >>> m = Variable("m", ("left", "right", "self"))
    >>> m.index("right")
    1
    >>> len(m.domain)
    3
    """

    name: str
    domain: tuple

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ProtocolDefinitionError(
                f"variable name {self.name!r} is not a valid identifier")
        if not isinstance(self.domain, tuple):
            object.__setattr__(self, "domain", tuple(self.domain))
        if len(self.domain) < 1:
            raise ProtocolDefinitionError(
                f"variable {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise ProtocolDefinitionError(
                f"variable {self.name!r} has duplicate domain values")

    def __contains__(self, value: object) -> bool:
        return value in self.domain

    def index(self, value: object) -> int:
        """Position of *value* in the domain (raises if absent)."""
        try:
            return self.domain.index(value)
        except ValueError:
            raise ProtocolDefinitionError(
                f"{value!r} is not in the domain of {self.name!r}") from None


def boolean(name: str) -> Variable:
    """A convenience constructor for a 0/1 variable."""
    return Variable(name, (0, 1))


def ranged(name: str, size: int) -> Variable:
    """A variable over ``{0, 1, ..., size-1}``."""
    if size < 1:
        raise ProtocolDefinitionError(f"ranged variable needs size >= 1, "
                                      f"got {size}")
    return Variable(name, tuple(range(size)))
