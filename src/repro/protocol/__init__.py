"""Parameterized ring protocol model (Section 2 of the paper).

A parameterized protocol ``p(K)`` is described by a *representative process*
(:class:`ProcessTemplate`) — the variables each process owns, the window of
neighbouring processes it reads, and its guarded-command actions — together
with a locally conjunctive set of legitimate states given as a local
predicate ``LC_r``.

The model supports:

* unidirectional rings (each process reads its predecessor and itself) and
  bidirectional rings (predecessor, itself, successor), and more generally
  any contiguous read window;
* one or more finite-domain variables owned per process;
* deterministic and nondeterministic guarded commands, written either as
  Python callables or in a small guarded-command text DSL
  (:func:`repro.protocol.dsl.parse_action`);
* instantiation to a concrete ring of ``K`` processes
  (:meth:`RingProtocol.instantiate`).
"""

from repro.protocol.variables import Variable
from repro.protocol.localstate import LocalState, LocalStateSpace, LocalView
from repro.protocol.actions import Action, LocalTransition
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.instance import RingInstance
from repro.protocol.dsl import parse_action, parse_predicate

__all__ = [
    "Variable",
    "LocalState",
    "LocalStateSpace",
    "LocalView",
    "Action",
    "LocalTransition",
    "ProcessTemplate",
    "RingProtocol",
    "RingInstance",
    "parse_action",
    "parse_predicate",
]
