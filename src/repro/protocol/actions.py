"""Guarded-command actions and local transitions.

An action ``grd_r -> stmt_r`` (Dijkstra's guarded-command notation,
Section 2.1) is represented by two callables over a
:class:`~repro.protocol.localstate.LocalView`:

* ``guard(view) -> bool`` — a local predicate over the read window;
* ``effect(view) -> value | cell | list`` — the new owned values.  A bare
  value is accepted for single-variable processes; a list (or tuple of
  cells wrapped in a list) expresses nondeterministic choice, e.g. action
  ``A_2`` of Example 4.2 (``m_r := right | left``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ProtocolDefinitionError
from repro.protocol.localstate import Cell, LocalState, LocalView


@dataclass(frozen=True)
class Action:
    """A guarded command of the representative process.

    ``source_text`` optionally records the DSL string the action was parsed
    from, for pretty-printing synthesized protocols.
    """

    name: str
    guard: Callable[[LocalView], bool]
    effect: Callable[[LocalView], object]
    source_text: str | None = field(default=None, compare=False)

    def result_cells(self, view: LocalView,
                     normalize: Callable[[object], Cell]) -> list[Cell]:
        """Evaluate the effect at *view* and normalize to a list of cells.

        *normalize* is supplied by the local state space and validates the
        written values against the variable domains.
        """
        raw = self.effect(view)
        if isinstance(raw, list):
            alternatives: Iterable[object] = raw
        else:
            alternatives = [raw]
        cells = []
        for alternative in alternatives:
            cell = normalize(alternative)
            if cell not in cells:
                cells.append(cell)
        if not cells:
            raise ProtocolDefinitionError(
                f"action {self.name!r} produced no result cells")
        return cells

    def __str__(self) -> str:
        if self.source_text:
            return f"{self.name}: {self.source_text}"
        return f"{self.name}: <callable guard> -> <callable effect>"


@dataclass(frozen=True, order=True)
class LocalTransition:
    """A local transition ``(s_r^l, s_r^l')`` of the representative process.

    Only the offset-0 (writable) cell differs between source and target;
    this invariant is established by the enumeration in
    :meth:`~repro.protocol.localstate.LocalStateSpace.transitions` and
    re-checked here.

    The *label* carries action provenance and is excluded from equality:
    the paper identifies a transition with its state pair.
    """

    source: LocalState
    target: LocalState
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.source.left != self.target.left:
            raise ProtocolDefinitionError(
                "transition endpoints have different windows")
        for offset in self.source.offsets:
            if offset == 0:
                continue
            if self.source.cell(offset) != self.target.cell(offset):
                raise ProtocolDefinitionError(
                    f"local transition {self.source} -> {self.target} "
                    f"writes a non-owned cell at offset {offset}")

    @property
    def write_projection(self) -> tuple[Cell, Cell]:
        """The transition projected on the writable variables ``W_r``.

        This is the (old cell, new cell) pair at offset 0, the object that
        pseudo-livelock analysis (Definition 5.13) chains into cycles.
        """
        return (self.source.own, self.target.own)

    @property
    def is_noop(self) -> bool:
        """Whether the transition leaves the owned cell unchanged."""
        return self.source.own == self.target.own

    def __str__(self) -> str:
        label = f" [{self.label}]" if self.label else ""
        return f"{self.source} → {self.target}{label}"


def transition_between(space, source: LocalState,
                       target_cell: object) -> LocalTransition:
    """Construct a labelled transition from *source* writing *target_cell*.

    Convenience used by synthesis when materializing candidate t-arcs.
    """
    cell = space._normalize_cell(target_cell)
    target = source.replace_own(cell)
    old = _cell_repr(source.own)
    new = _cell_repr(cell)
    return LocalTransition(source, target, label=f"t[{old}->{new}]")


def _cell_repr(cell: Cell) -> str:
    if len(cell) == 1:
        return str(cell[0])
    return "(" + ",".join(str(v) for v in cell) + ")"
