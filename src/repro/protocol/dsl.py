"""A guarded-command text DSL.

The paper presents protocols in Dijkstra's guarded-command notation; this
module parses an ASCII rendition of it::

    m[-1] == 'left' and m[0] != 'self' and m[1] == 'right' -> m := 'self'

Grammar
-------
* An **action** is ``guard -> statement``.
* The **guard** is a boolean expression (see :mod:`repro.protocol.expr`);
  variables are referenced as ``name[offset]``.
* The **statement** is one or more *alternatives* separated by a top-level
  ``|`` (nondeterministic choice, as in ``m := 'right' | 'left'`` of
  Example 4.2's action ``A_2``).  Each alternative is a comma-separated
  list of assignments ``name := expr``; unassigned owned variables keep
  their values.  All assignments of an alternative are applied atomically
  (right-hand sides see the pre-state).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import DslNameError, DslSyntaxError
from repro.protocol.actions import Action
from repro.protocol.expr import compile_expression, compile_predicate
from repro.protocol.localstate import LocalView
from repro.protocol.variables import Variable


def split_top_level(text: str, separator: str) -> list[str]:
    """Split *text* on *separator* outside parentheses/brackets/quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
        elif char in "'\"":
            quote = char
            current.append(char)
        elif char in "([":
            depth += 1
            current.append(char)
        elif char in ")]":
            depth -= 1
            current.append(char)
        elif depth == 0 and text.startswith(separator, i):
            parts.append("".join(current))
            current = []
            i += len(separator)
            continue
        else:
            current.append(char)
        i += 1
    if quote is not None:
        raise DslSyntaxError(f"unterminated quote in {text!r}")
    if depth != 0:
        raise DslSyntaxError(f"unbalanced brackets in {text!r}")
    parts.append("".join(current))
    return parts


def _parse_assignment(text: str, variables: Sequence[Variable],
                      writable: set[str],
                      ) -> tuple[str, list[Callable]]:
    """Parse ``name := expr | expr | ...`` into (name, alternatives)."""
    pieces = text.split(":=")
    if len(pieces) != 2:
        raise DslSyntaxError(f"assignment must be 'name := expr', "
                             f"got {text!r}")
    name = pieces[0].strip()
    if name not in {v.name for v in variables}:
        raise DslNameError(f"unknown variable {name!r} in assignment "
                           f"{text!r}")
    if name not in writable:
        raise DslSyntaxError(f"variable {name!r} is not writable")
    alternatives = [compile_expression(piece, variables)
                    for piece in split_top_level(pieces[1], "|")]
    return name, alternatives


def parse_action(text: str, variables: Iterable[Variable],
                 name: str = "A") -> Action:
    """Parse ``guard -> statement`` into an :class:`Action`.

    >>> from repro.protocol.variables import ranged
    >>> a = parse_action("x[-1] == 1 and x[0] == 0 -> x := 1",
    ...                  [ranged("x", 2)], name="t01")
    >>> a.name
    't01'
    """
    variables = tuple(variables)
    writable = {v.name for v in variables}
    halves = split_top_level(text, "->")
    if len(halves) != 2:
        raise DslSyntaxError(
            f"action must be 'guard -> statement', got {text!r}")
    guard_text, statement_text = halves[0].strip(), halves[1].strip()
    guard = compile_predicate(guard_text, variables)

    assignments = [
        _parse_assignment(piece, variables, writable)
        for piece in split_top_level(statement_text, ",")
    ]
    if not assignments:
        raise DslSyntaxError(f"empty statement in {text!r}")

    positions = {v.name: i for i, v in enumerate(variables)}

    def effect(view: LocalView) -> list[tuple]:
        # Nondeterministic alternatives per assignment compose by
        # Cartesian product; all writes of one choice happen atomically
        # against the pre-state view.
        results = [list(view.cell(0))]
        for var_name, expressions in assignments:
            expanded = []
            for cell in results:
                for expression in expressions:
                    updated = list(cell)
                    updated[positions[var_name]] = expression(view)
                    expanded.append(updated)
            results = expanded
        return [tuple(cell) for cell in results]

    return Action(name=name, guard=guard, effect=effect, source_text=text)


def parse_actions(texts: Iterable[str | tuple[str, str]],
                  variables: Iterable[Variable],
                  prefix: str = "A") -> tuple[Action, ...]:
    """Parse several actions; items may be strings or ``(name, text)``.

    Unnamed actions are labelled ``A1, A2, ...`` with the given *prefix*.
    """
    variables = tuple(variables)
    actions = []
    for i, item in enumerate(texts, start=1):
        if isinstance(item, tuple):
            action_name, text = item
        else:
            action_name, text = f"{prefix}{i}", item
        actions.append(parse_action(text, variables, name=action_name))
    return tuple(actions)


def parse_predicate(text: str, variables: Iterable[Variable],
                    ) -> Callable[[LocalView], bool]:
    """Parse a local predicate (e.g. a legitimacy constraint ``LC_r``)."""
    return compile_predicate(text, tuple(variables))
