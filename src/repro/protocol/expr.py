"""Safe compilation of DSL expressions.

Guards, effects and local predicates may be written as text, e.g.::

    m[-1] == 'left' and m[0] != 'self' and m[1] == 'right'
    (x[0] + x[-1]) % 3

``name[offset]`` reads variable *name* at ring offset *offset* relative to
the representative process.  Expressions are parsed with :mod:`ast`,
validated against a small node whitelist (no calls, no attribute access, no
comprehensions), and compiled once; evaluation binds each variable name to a
tiny reader over the current :class:`~repro.protocol.localstate.LocalView`.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

from repro.errors import DslNameError, DslSyntaxError
from repro.protocol.localstate import LocalView
from repro.protocol.variables import Variable

_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod,
    ast.Compare,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.Name, ast.Load,
    ast.Constant,
    ast.Subscript,
    ast.IfExp,
    ast.Tuple,
)


class _VarReader:
    """Binds a variable name to the view being evaluated: ``x[-1]``."""

    __slots__ = ("_view", "_name")

    def __init__(self, view: LocalView, name: str) -> None:
        self._view = view
        self._name = name

    def __getitem__(self, offset: object) -> object:
        if not isinstance(offset, int):
            raise DslSyntaxError(
                f"offset of {self._name!r} must be an integer, "
                f"got {offset!r}")
        return self._view.get(self._name, offset)


def _validate(tree: ast.AST, text: str,
              known_names: set[str]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise DslSyntaxError(
                f"construct {type(node).__name__} not allowed in "
                f"expression {text!r}")
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, str, bool)):
                raise DslSyntaxError(
                    f"literal {node.value!r} not allowed in {text!r}")
        if isinstance(node, ast.Name):
            if node.id not in known_names:
                raise DslNameError(
                    f"unknown variable {node.id!r} in {text!r} "
                    f"(known: {sorted(known_names)})")
    # Every variable reference must be subscripted with an offset.
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Name) and not isinstance(
                    node, ast.Subscript):
                raise DslSyntaxError(
                    f"variable {child.id!r} must be subscripted with a ring "
                    f"offset, e.g. {child.id}[0], in {text!r}")


def compile_expression(text: str,
                       variables: Iterable[Variable],
                       ) -> Callable[[LocalView], object]:
    """Compile *text* to a function of a :class:`LocalView`.

    >>> from repro.protocol.variables import ranged
    >>> f = compile_expression("(x[0] + 1) % 3", [ranged("x", 3)])
    """
    names = {v.name for v in variables}
    stripped = text.strip()
    if not stripped:
        raise DslSyntaxError("empty expression")
    try:
        tree = ast.parse(stripped, mode="eval")
    except SyntaxError as exc:
        raise DslSyntaxError(f"cannot parse expression {text!r}: "
                             f"{exc.msg}") from exc
    _validate(tree, text, names)
    code = compile(tree, filename="<repro-dsl>", mode="eval")

    def evaluate(view: LocalView) -> object:
        env = {name: _VarReader(view, name) for name in names}
        env["__builtins__"] = {}
        return eval(code, env)  # noqa: S307 - AST validated above

    evaluate.source_text = stripped  # type: ignore[attr-defined]
    return evaluate


def compile_predicate(text: str,
                      variables: Iterable[Variable],
                      ) -> Callable[[LocalView], bool]:
    """Compile a boolean expression; the result is coerced with ``bool``."""
    inner = compile_expression(text, variables)

    def predicate(view: LocalView) -> bool:
        return bool(inner(view))

    predicate.source_text = inner.source_text  # type: ignore[attr-defined]
    return predicate
