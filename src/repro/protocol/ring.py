"""Parameterized ring protocols.

A :class:`RingProtocol` bundles the representative process with a *locally
conjunctive* set of legitimate states: ``I(K) = ∧_{r=0}^{K-1} LC_r`` where
``LC_r`` is a local predicate over the read window (Section 2.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

from repro.errors import ProtocolDefinitionError
from repro.protocol.actions import Action
from repro.protocol.dsl import parse_predicate
from repro.protocol.localstate import LocalState, LocalStateSpace, LocalView
from repro.protocol.process import ProcessTemplate

Legitimacy = Union[str, Callable[[LocalView], bool]]


class RingProtocol:
    """A parameterized protocol ``p(K)`` on a ring, for all ``K``.

    Parameters
    ----------
    name:
        A human-readable protocol name.
    process:
        The representative process template.
    legitimacy:
        The local constraint ``LC_r``, either a DSL string (e.g.
        ``"c[0] != c[-1]"``) or a callable over a ``LocalView``.
    description:
        Optional free-form documentation.
    """

    def __init__(self, name: str, process: ProcessTemplate,
                 legitimacy: Legitimacy, description: str = "") -> None:
        self.name = name
        self.process = process
        self.description = description
        if isinstance(legitimacy, str):
            self.legitimacy = parse_predicate(legitimacy, process.variables)
        elif callable(legitimacy):
            self.legitimacy = legitimacy
        else:
            raise ProtocolDefinitionError(
                f"legitimacy must be a DSL string or callable, "
                f"got {type(legitimacy).__name__}")
        self._space: LocalStateSpace | None = None

    # ------------------------------------------------------------------
    @property
    def space(self) -> LocalStateSpace:
        """The (cached) local state space of the representative process."""
        if self._space is None:
            self._space = self.process.local_space()
        return self._space

    @property
    def unidirectional(self) -> bool:
        """Whether the underlying ring is unidirectional."""
        return self.process.unidirectional

    def is_legitimate(self, state: LocalState) -> bool:
        """Whether ``LC_r`` holds at the local *state*."""
        return bool(self.legitimacy(self.space.view(state)))

    def legitimate_states(self) -> tuple[LocalState, ...]:
        """All local states satisfying ``LC_r``."""
        return tuple(s for s in self.space if self.is_legitimate(s))

    def illegitimate_states(self) -> tuple[LocalState, ...]:
        """All local states violating ``LC_r`` (the paper's ``¬LC_r``)."""
        return tuple(s for s in self.space if not self.is_legitimate(s))

    # ------------------------------------------------------------------
    def instantiate(self, size: int):
        """The concrete protocol instance ``p(K)`` with ``K = size``.

        ``size`` must be at least the read-window width so that the window
        positions of one process are distinct ring positions (smaller rings
        are degenerate: a process would read the same neighbour twice).
        """
        from repro.protocol.instance import RingInstance

        return RingInstance(self, size)

    def with_actions(self, actions: Iterable[Action],
                     name: str | None = None) -> "RingProtocol":
        """A protocol with the same legitimacy but different actions."""
        return RingProtocol(
            name=name or f"{self.name}_revised",
            process=self.process.with_actions(actions),
            legitimacy=self.legitimacy,
            description=self.description,
        )

    def extended_with(self, actions: Iterable[Action],
                      name: str | None = None) -> "RingProtocol":
        """A protocol with *actions* added to the existing ones.

        This is the shape of Problem 3.1's output: recovery actions are
        added while ``Δ_p|I`` is preserved (the new actions must only be
        enabled outside ``LC_r``; synthesis guarantees this).
        """
        return RingProtocol(
            name=name or f"{self.name}_ss",
            process=self.process.extended_with(actions),
            legitimacy=self.legitimacy,
            description=self.description,
        )

    def pretty(self) -> str:
        """A guarded-command listing of the protocol."""
        lines = [f"protocol {self.name}"
                 + (" (unidirectional ring)" if self.unidirectional
                    else " (bidirectional ring)")]
        variables = ", ".join(
            f"{v.name} : {list(v.domain)}" for v in self.process.variables)
        lines.append(f"  var {variables}")
        legit = getattr(self.legitimacy, "source_text", None)
        lines.append(f"  LC_r = {legit if legit else '<callable>'}")
        for action in self.process.actions:
            lines.append(f"  {action}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"RingProtocol({self.name!r}, "
                f"actions={len(self.process.actions)}, "
                f"window={list(self.process.window_offsets)})")
