"""The representative (template) process ``P_r``.

All K processes of a parameterized ring are instantiated from one template
by index substitution (Section 2.1).  The template declares:

* the variables each process **owns** (and can write) — the paper's ``W_r``
  restricted to one process, replicated per ring position;
* how many predecessors (``reads_left``) and successors (``reads_right``)
  it can read — together with its own variables this forms ``R_r``;
* its guarded-command actions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

from repro.errors import ProtocolDefinitionError
from repro.protocol.actions import Action
from repro.protocol.localstate import LocalStateSpace
from repro.protocol.variables import Variable


@dataclass(frozen=True)
class ProcessTemplate:
    """The representative process of a parameterized ring protocol.

    >>> from repro.protocol.variables import ranged
    >>> from repro.protocol.dsl import parse_action
    >>> x = ranged("x", 2)
    >>> agree = parse_action("x[-1] == 1 and x[0] == 0 -> x := 1", [x])
    >>> P = ProcessTemplate(variables=(x,), actions=(agree,))
    >>> P.window_width   # unidirectional default: reads x[-1] and x[0]
    2
    """

    variables: tuple[Variable, ...]
    actions: tuple[Action, ...] = ()
    reads_left: int = 1
    reads_right: int = 0
    name: str = "P"

    def __post_init__(self) -> None:
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))
        if not isinstance(self.actions, tuple):
            object.__setattr__(self, "actions", tuple(self.actions))
        if not self.variables:
            raise ProtocolDefinitionError("a process owns at least one "
                                          "variable")
        names = [v.name for v in self.variables]
        if len(set(names)) != len(names):
            raise ProtocolDefinitionError(f"duplicate variable names in "
                                          f"{names}")
        if self.reads_left < 0 or self.reads_right < 0:
            raise ProtocolDefinitionError("read window sizes must be >= 0")
        if self.reads_left == 0 and self.reads_right == 0:
            raise ProtocolDefinitionError(
                "a ring process must read at least one neighbour")

    # ------------------------------------------------------------------
    @property
    def window_offsets(self) -> range:
        """Ring offsets the process reads: ``-reads_left .. +reads_right``."""
        return range(-self.reads_left, self.reads_right + 1)

    @property
    def window_width(self) -> int:
        """Number of ring positions in the read window."""
        return self.reads_left + self.reads_right + 1

    @property
    def unidirectional(self) -> bool:
        """Whether the process reads no successor (information flows one
        way around the ring, the setting of Section 5)."""
        return self.reads_right == 0

    def local_space(self) -> LocalStateSpace:
        """A fresh :class:`LocalStateSpace` over this template.

        The space caches state/transition enumerations, so callers should
        hold on to one instance; :class:`repro.protocol.ring.RingProtocol`
        does this for you.
        """
        return LocalStateSpace(self)

    def with_actions(self, actions: Iterable[Action]) -> "ProcessTemplate":
        """A copy of this template with *actions* replacing the current
        ones (used when synthesis emits the stabilizing protocol)."""
        return replace(self, actions=tuple(actions))

    def extended_with(self, actions: Iterable[Action]) -> "ProcessTemplate":
        """A copy with *actions* appended to the current ones."""
        return replace(self, actions=self.actions + tuple(actions))
