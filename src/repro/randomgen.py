"""Random ring-protocol generation and theorem fuzzing.

The most convincing evidence that a verification procedure is
implemented correctly is adversarial: sample random protocols and
compare the local verdicts against brute-force global checking.  This
module provides

* :class:`ProtocolSampler` — random unidirectional ring protocols with
  locally conjunctive invariants and (optionally) self-disabling,
  closure-respecting transition sets;
* :func:`audit_theorems` — a fuzzing harness asserting Theorem 4.2's
  exactness and Theorem 5.14's soundness on each sample, used by the
  hypothesis test-suite and exposed on the CLI as ``repro fuzz``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.checker.livelock import has_livelock
from repro.checker.statespace import StateGraph
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.core.selfdisabling import action_for_transition
from repro.engine import EngineStats, ResultCache, analysis_key, \
    supervise_work_items
from repro.engine.supervisor import SupervisorPolicy
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged


@dataclass
class ProtocolSampler:
    """Samples random unidirectional ring protocols.

    Parameters
    ----------
    min_domain, max_domain:
        Range of the (single) variable's domain size.
    max_transitions:
        Upper bound on the number of local transitions drawn.
    restrict_sources_to_bad:
        When true, transitions originate only in illegitimate local
        states — which makes ``I`` trivially closed (inside ``I`` no
        process is enabled) and matches the synthesis setting of
        Section 6.  Theorem 5.14's certificate presumes closure, so the
        livelock fuzzing keeps this on.
    seed:
        RNG seed; each :meth:`sample` call advances the stream.
    """

    min_domain: int = 2
    max_domain: int = 3
    max_transitions: int = 6
    restrict_sources_to_bad: bool = True
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 2 <= self.min_domain <= self.max_domain:
            raise ValueError("need 2 <= min_domain <= max_domain")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def sample(self) -> RingProtocol:
        """Draw one random protocol."""
        rng = self._rng
        domain = rng.randint(self.min_domain, self.max_domain)
        x = ranged("x", domain)
        blank = RingProtocol("random",
                             ProcessTemplate(variables=(x,)),
                             lambda view: True)
        states = blank.space.states
        legit = frozenset(s for s in states if rng.random() < 0.5)
        protocol = RingProtocol(
            "random", ProcessTemplate(variables=(x,)),
            _membership_predicate(legit))

        picks: list[LocalTransition] = []
        sources: set[LocalState] = set()
        for _ in range(rng.randint(0, self.max_transitions)):
            source = states[rng.randrange(len(states))]
            if self.restrict_sources_to_bad and source in legit:
                continue
            new_value = rng.randrange(domain)
            target = source.replace_own((new_value,))
            if target == source:
                continue
            picks.append(LocalTransition(source, target, "rnd"))
            sources.add(source)
        # Keep the set self-disabling: no transition may land on another
        # transition's source.
        kept = [t for t in picks if t.target not in sources]
        deduped = list(dict.fromkeys(kept))
        actions = tuple(action_for_transition(t, name=f"r{i}")
                        for i, t in enumerate(deduped))
        return protocol.with_actions(actions, name="random")


def _membership_predicate(legit: frozenset):
    def predicate(view) -> bool:
        return view.state in legit

    return predicate


@dataclass(frozen=True)
class Discrepancy:
    """A disagreement between local and global verdicts (a bug if ever
    produced)."""

    kind: str
    ring_size: int
    protocol_listing: str


@dataclass
class AuditReport:
    """Outcome of a fuzzing run."""

    samples: int
    certificates_issued: int
    deadlock_checks: int
    discrepancies: list[Discrepancy] = field(default_factory=list)
    stats: EngineStats | None = field(default=None, compare=False)

    @property
    def clean(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "CLEAN" if self.clean else \
            f"{len(self.discrepancies)} DISCREPANCIES"
        return (f"fuzzing audit: {self.samples} random protocols, "
                f"{self.deadlock_checks} per-size deadlock comparisons, "
                f"{self.certificates_issued} livelock certificates "
                f"verified — {status}")


@dataclass(frozen=True)
class _SampleOutcome:
    """The audit of one sampled protocol (picklable work-item result)."""

    certified: bool
    deadlock_checks: int
    states_explored: int
    discrepancies: tuple[Discrepancy, ...]
    compile_seconds: float = 0.0
    encode_seconds: float = 0.0
    states_encoded: int = 0


def _audit_one(max_ring_size: int, protocol: RingProtocol,
               ) -> _SampleOutcome:
    """Audit a single protocol against brute force (one work item).

    The brute-force side rides the compiled kernel backend through
    :class:`StateGraph` — one packed enumeration per size answers both
    the deadlock and (under a certificate) the livelock comparison.
    """
    analyzer = DeadlockAnalyzer(protocol)
    predicted = analyzer.deadlocked_ring_sizes(max_ring_size)
    certificate = LivelockCertifier(
        protocol, max_ring_size=max_ring_size + 1).analyze()
    certified = certificate.verdict is LivelockVerdict.CERTIFIED_FREE
    deadlock_checks = 0
    states_explored = 0
    kernel = EngineStats()
    discrepancies: list[Discrepancy] = []
    for size in range(2, max_ring_size + 1):
        deadlock_checks += 1
        graph = StateGraph(protocol.instantiate(size))
        states_explored += len(graph)
        kernel.absorb_kernel(graph.kernel_stats)
        has_deadlock = any(not graph.in_invariant[i]
                           for i in graph.deadlock_indices())
        if has_deadlock != (size in predicted):
            discrepancies.append(Discrepancy(
                "theorem-4.2-mismatch", size, protocol.pretty()))
        if certified and has_livelock(graph):
            discrepancies.append(Discrepancy(
                "theorem-5.14-unsound", size, protocol.pretty()))
    return _SampleOutcome(certified=certified,
                          deadlock_checks=deadlock_checks,
                          states_explored=states_explored,
                          discrepancies=tuple(discrepancies),
                          compile_seconds=kernel.compile_seconds,
                          encode_seconds=kernel.encode_seconds,
                          states_encoded=kernel.states_encoded)


def audit_theorems(samples: int = 50, max_ring_size: int = 5,
                   seed: int = 0,
                   sampler: ProtocolSampler | None = None,
                   jobs: int = 1,
                   cache: ResultCache | None = None,
                   policy: SupervisorPolicy | None = None,
                   schedule: str = "auto",
                   batch_size: int | None = None) -> AuditReport:
    """Fuzz Theorem 4.2 (exactness) and Theorem 5.14 (soundness).

    For each sampled protocol, compares the local per-size deadlock
    prediction against global enumeration for every
    ``K in 2..max_ring_size``, and — when a livelock-freedom certificate
    is issued — confirms no instance livelocks.  Any disagreement is
    recorded as a :class:`Discrepancy`; a correct implementation always
    returns a clean report.

    Sampling is always serial (the RNG stream fixes the protocols), but
    the per-protocol audits are independent work items: ``jobs > 1``
    fans them out over worker processes, and *cache* reuses per-sample
    outcomes keyed on each protocol's structural fingerprint — both with
    aggregate reports identical to the serial, uncached run.  *policy*
    supervises the fanned-out audits (per-item timeouts, crash retry,
    degradation to an in-parent audit — see
    :mod:`repro.engine.supervisor`).
    """
    if sampler is None:
        sampler = ProtocolSampler(seed=seed)
    stats = EngineStats(jobs=jobs)
    protocols = [sampler.sample() for _ in range(samples)]

    outcomes: dict[int, _SampleOutcome] = {}
    with stats.stage("audit", samples=samples,
                     max_ring_size=max_ring_size, jobs=jobs):
        pending: list[int] = []
        keys: dict[int, str] = {}
        for index, protocol in enumerate(protocols):
            if cache is not None:
                keys[index] = analysis_key("audit-sample", protocol,
                                           max_ring_size=max_ring_size)
                cached = cache.get(keys[index])
                if cached is not None:
                    stats.cache_hits += 1
                    outcomes[index] = cached
                    continue
                stats.cache_misses += 1
            pending.append(index)

        if (jobs > 1 and len(pending) > 1) or policy is not None \
                or schedule == "batch":
            # No prewarm hook: every sampled protocol is distinct, so
            # there is no shared kernel to compile ahead of the fork.
            fresh = supervise_work_items(
                _audit_indexed_worker, pending, jobs=jobs,
                context=(max_ring_size, protocols), stats=stats,
                policy=policy, fallback_worker=_audit_indexed_worker,
                schedule=schedule, batch_size=batch_size)
        else:
            fresh = [_audit_one(max_ring_size, protocols[index])
                     for index in pending]
        for index, outcome in zip(pending, fresh):
            stats.work_items += 1
            stats.states_explored += outcome.states_explored
            # getattr: outcomes unpickled from pre-kernel cache entries
            # lack the counter fields.
            stats.compile_seconds += getattr(
                outcome, "compile_seconds", 0.0)
            stats.encode_seconds += getattr(
                outcome, "encode_seconds", 0.0)
            stats.states_encoded += getattr(
                outcome, "states_encoded", 0)
            outcomes[index] = outcome
            if cache is not None:
                cache.put(keys[index], outcome)

    report = AuditReport(samples=samples, certificates_issued=0,
                         deadlock_checks=0, stats=stats)
    for index in range(samples):
        outcome = outcomes[index]
        if outcome.certified:
            report.certificates_issued += 1
        report.deadlock_checks += outcome.deadlock_checks
        report.discrepancies.extend(outcome.discrepancies)
    return report


def _audit_indexed_worker(context, index: int) -> _SampleOutcome:
    """Module-level worker for :func:`repro.engine.run_work_items`."""
    max_ring_size, protocols = context
    return _audit_one(max_ring_size, protocols[index])
