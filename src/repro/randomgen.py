"""Random ring-protocol generation and theorem fuzzing.

The most convincing evidence that a verification procedure is
implemented correctly is adversarial: sample random protocols and
compare the local verdicts against brute-force global checking.  This
module provides

* :class:`ProtocolSampler` — random unidirectional ring protocols with
  locally conjunctive invariants and (optionally) self-disabling,
  closure-respecting transition sets;
* :func:`audit_theorems` — a fuzzing harness asserting Theorem 4.2's
  exactness and Theorem 5.14's soundness on each sample, used by the
  hypothesis test-suite and exposed on the CLI as ``repro fuzz``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.checker.livelock import has_livelock
from repro.checker.statespace import StateGraph
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged


@dataclass
class ProtocolSampler:
    """Samples random unidirectional ring protocols.

    Parameters
    ----------
    min_domain, max_domain:
        Range of the (single) variable's domain size.
    max_transitions:
        Upper bound on the number of local transitions drawn.
    restrict_sources_to_bad:
        When true, transitions originate only in illegitimate local
        states — which makes ``I`` trivially closed (inside ``I`` no
        process is enabled) and matches the synthesis setting of
        Section 6.  Theorem 5.14's certificate presumes closure, so the
        livelock fuzzing keeps this on.
    seed:
        RNG seed; each :meth:`sample` call advances the stream.
    """

    min_domain: int = 2
    max_domain: int = 3
    max_transitions: int = 6
    restrict_sources_to_bad: bool = True
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 2 <= self.min_domain <= self.max_domain:
            raise ValueError("need 2 <= min_domain <= max_domain")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    def sample(self) -> RingProtocol:
        """Draw one random protocol."""
        rng = self._rng
        domain = rng.randint(self.min_domain, self.max_domain)
        x = ranged("x", domain)
        blank = RingProtocol("random",
                             ProcessTemplate(variables=(x,)),
                             lambda view: True)
        states = blank.space.states
        legit = frozenset(s for s in states if rng.random() < 0.5)
        protocol = RingProtocol(
            "random", ProcessTemplate(variables=(x,)),
            _membership_predicate(legit))

        picks: list[LocalTransition] = []
        sources: set[LocalState] = set()
        for _ in range(rng.randint(0, self.max_transitions)):
            source = states[rng.randrange(len(states))]
            if self.restrict_sources_to_bad and source in legit:
                continue
            new_value = rng.randrange(domain)
            target = source.replace_own((new_value,))
            if target == source:
                continue
            picks.append(LocalTransition(source, target, "rnd"))
            sources.add(source)
        # Keep the set self-disabling: no transition may land on another
        # transition's source.
        kept = [t for t in picks if t.target not in sources]
        deduped = list(dict.fromkeys(kept))
        actions = tuple(action_for_transition(t, name=f"r{i}")
                        for i, t in enumerate(deduped))
        return protocol.with_actions(actions, name="random")


def _membership_predicate(legit: frozenset):
    def predicate(view) -> bool:
        return view.state in legit

    return predicate


@dataclass(frozen=True)
class Discrepancy:
    """A disagreement between local and global verdicts (a bug if ever
    produced)."""

    kind: str
    ring_size: int
    protocol_listing: str


@dataclass
class AuditReport:
    """Outcome of a fuzzing run."""

    samples: int
    certificates_issued: int
    deadlock_checks: int
    discrepancies: list[Discrepancy] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.discrepancies

    def summary(self) -> str:
        status = "CLEAN" if self.clean else \
            f"{len(self.discrepancies)} DISCREPANCIES"
        return (f"fuzzing audit: {self.samples} random protocols, "
                f"{self.deadlock_checks} per-size deadlock comparisons, "
                f"{self.certificates_issued} livelock certificates "
                f"verified — {status}")


def audit_theorems(samples: int = 50, max_ring_size: int = 5,
                   seed: int = 0,
                   sampler: ProtocolSampler | None = None) -> AuditReport:
    """Fuzz Theorem 4.2 (exactness) and Theorem 5.14 (soundness).

    For each sampled protocol, compares the local per-size deadlock
    prediction against global enumeration for every
    ``K in 2..max_ring_size``, and — when a livelock-freedom certificate
    is issued — confirms no instance livelocks.  Any disagreement is
    recorded as a :class:`Discrepancy`; a correct implementation always
    returns a clean report.
    """
    if sampler is None:
        sampler = ProtocolSampler(seed=seed)
    report = AuditReport(samples=samples, certificates_issued=0,
                         deadlock_checks=0)
    for _ in range(samples):
        protocol = sampler.sample()
        analyzer = DeadlockAnalyzer(protocol)
        predicted = analyzer.deadlocked_ring_sizes(max_ring_size)
        certificate = LivelockCertifier(
            protocol, max_ring_size=max_ring_size + 1).analyze()
        certified = certificate.verdict is LivelockVerdict.CERTIFIED_FREE
        if certified:
            report.certificates_issued += 1
        for size in range(2, max_ring_size + 1):
            report.deadlock_checks += 1
            instance = protocol.instantiate(size)
            has_deadlock = any(
                instance.is_deadlock(s)
                and not instance.invariant_holds(s)
                for s in instance.states())
            if has_deadlock != (size in predicted):
                report.discrepancies.append(Discrepancy(
                    "theorem-4.2-mismatch", size, protocol.pretty()))
            if certified:
                graph = StateGraph(instance)
                if has_livelock(graph):
                    report.discrepancies.append(Discrepancy(
                        "theorem-5.14-unsound", size, protocol.pretty()))
    return report
