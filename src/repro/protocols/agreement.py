"""Binary (and m-ary) agreement on a unidirectional ring (Example 5.2,
Section 6.2).

The invariant is local equality, ``LC_r = (x_r = x_{r-1})``; globally all
processes hold the same value.  Three variants:

* :func:`agreement` — the empty input protocol (the synthesis problem);
* :func:`livelock_agreement` — Example 5.2's protocol with **both** copy
  transitions ``t01`` and ``t10``, which livelocks (the K=4 cycle of
  Figures 5 and 6);
* :func:`stabilizing_agreement` — the §6.2 solution including exactly one
  of the two candidate transitions, self-stabilizing for every K.
"""

from __future__ import annotations

from repro.protocol.dsl import parse_actions
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged

AGREEMENT_LEGITIMACY = "x[0] == x[-1]"


def _protocol(name: str, values: int, texts, description: str,
              ) -> RingProtocol:
    x = ranged("x", values)
    actions = parse_actions(texts, [x])
    process = ProcessTemplate(variables=(x,), actions=actions,
                              reads_left=1, reads_right=0)
    return RingProtocol(name, process, AGREEMENT_LEGITIMACY,
                        description=description)


def agreement(values: int = 2) -> RingProtocol:
    """The empty agreement protocol over ``values`` values."""
    return _protocol("agreement", values, (),
                     "Agreement invariant (x_r = x_{r-1}); no actions — "
                     "the input to the Section 6.2 synthesis example.")


def livelock_agreement() -> RingProtocol:
    """Example 5.2: both copy transitions — livelocks (e.g. the K=4 cycle
    ``1000 → 1100 → 0100 → 0110 → 0111 → 0011 → 1011 → 1001 → 1000``)."""
    texts = [
        ("t10", "x[-1] == 0 and x[0] == 1 -> x := 0"),
        ("t01", "x[-1] == 1 and x[0] == 0 -> x := 1"),
    ]
    return _protocol("agreement-livelock", 2, texts,
                     "Example 5.2: copies the predecessor in both "
                     "directions; has livelocks for every even K >= 4.")


def stabilizing_agreement(values: int = 2,
                          resolve_up: bool = True) -> RingProtocol:
    """The §6.2 synthesized solution: exactly one copy direction.

    ``resolve_up=True`` includes ``t01`` (raise toward the predecessor,
    resolving local deadlocks with ``x_r < x_{r-1}``); ``False`` includes
    ``t10``.  Either choice is strongly self-stabilizing for every K;
    including *both* reintroduces the Example 5.2 livelock.
    """
    if resolve_up:
        texts = [("t01", "x[0] < x[-1] -> x := x[-1]")]
    else:
        texts = [("t10", "x[0] > x[-1] -> x := x[-1]")]
    return _protocol("agreement-ss", values, texts,
                     "Section 6.2 agreement solution with a single copy "
                     "direction; converges for every K.")
