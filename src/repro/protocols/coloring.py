"""Ring coloring protocols (Sections 6.1 and 6.2).

``LC_r = (c_r ≠ c_{r-1})`` — each process differs from its predecessor.
Both the 3-coloring walkthrough of §6.1 and the 2-coloring example of
§6.2 start from the *empty* protocol; the paper's methodology **fails** on
both (every candidate set's pseudo-livelocks form contiguous trails),
which for 2-coloring is consistent with the known impossibility of
self-stabilizing 2-coloring on unidirectional rings [25].
"""

from __future__ import annotations

from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged

COLORING_LEGITIMACY = "c[0] != c[-1]"


def coloring(colors: int) -> RingProtocol:
    """The empty coloring protocol with the given number of colors."""
    if colors < 2:
        raise ValueError("coloring needs at least 2 colors")
    c = ranged("c", colors)
    process = ProcessTemplate(variables=(c,), actions=(),
                              reads_left=1, reads_right=0)
    return RingProtocol(
        f"{colors}-coloring", process, COLORING_LEGITIMACY,
        description=f"{colors}-coloring invariant (c_r != c_r-1) on a "
                    f"unidirectional ring; no actions.")


def two_coloring() -> RingProtocol:
    """The §6.2 2-coloring instance (methodology declares failure)."""
    return coloring(2)


def three_coloring() -> RingProtocol:
    """The §6.1 3-coloring walkthrough (methodology declares failure)."""
    return coloring(3)
