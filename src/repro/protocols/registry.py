"""A name → factory registry of the bundled protocols (CLI and tests)."""

from __future__ import annotations

from typing import Callable

from repro.protocol.ring import RingProtocol
from repro.protocols.agreement import (
    agreement,
    livelock_agreement,
    stabilizing_agreement,
)
from repro.protocols.coloring import three_coloring, two_coloring
from repro.protocols.maximal_matching import (
    generalizable_matching,
    gouda_acharya_matching,
    matching_base,
    nongeneralizable_matching,
)
from repro.protocols.sum_not_two import (
    stabilizing_sum_not_two,
    sum_not_two,
)

REGISTRY: dict[str, Callable[[], RingProtocol]] = {
    "agreement": agreement,
    "agreement-livelock": livelock_agreement,
    "agreement-ss": stabilizing_agreement,
    "matching-base": matching_base,
    "matching-ex4.2": generalizable_matching,
    "matching-ex4.3": nongeneralizable_matching,
    "matching-gouda-acharya": gouda_acharya_matching,
    "2-coloring": two_coloring,
    "3-coloring": three_coloring,
    "sum-not-two": sum_not_two,
    "sum-not-two-ss": stabilizing_sum_not_two,
}


def get_protocol(name: str) -> RingProtocol:
    """Build the registered protocol *name* (raises ``KeyError`` with the
    available names otherwise)."""
    try:
        factory = REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown protocol {name!r}; known: {known}") \
            from None
    return factory()
