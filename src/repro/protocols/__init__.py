"""The paper's case-study protocols, ready to analyze.

========================  =====================================  ==========
Factory                   Paper reference                        Topology
========================  =====================================  ==========
``matching_base``         Example 4.1 (invariant only)           bidirectional
``generalizable_matching``    Example 4.2 (deadlock-free ∀K)     bidirectional
``nongeneralizable_matching`` Example 4.3 (deadlocks at 4k/6k)   bidirectional
``gouda_acharya_matching``    Figure 8 ([23]; K=5 livelock)      bidirectional
``agreement``             Example 5.2 / §6.2 (empty input)       unidirectional
``livelock_agreement``    Example 5.2 (both t01 and t10)         unidirectional
``stabilizing_agreement`` §6.2 synthesized solution              unidirectional
``coloring``              §6.1 / §6.2 (2- and 3-coloring)        unidirectional
``sum_not_two``           §6.2 (empty input)                     unidirectional
``stabilizing_sum_not_two``   §6.2 synthesized solution          unidirectional
``DijkstraTokenRing``     Dijkstra's K-state token ring [1]      unidirectional
========================  =====================================  ==========
"""

from repro.protocols.maximal_matching import (
    MATCHING_LEGITIMACY,
    generalizable_matching,
    gouda_acharya_matching,
    matching_base,
    nongeneralizable_matching,
)
from repro.protocols.agreement import (
    agreement,
    livelock_agreement,
    stabilizing_agreement,
)
from repro.protocols.coloring import coloring, two_coloring, three_coloring
from repro.protocols.sum_not_two import sum_not_two, stabilizing_sum_not_two
from repro.protocols.token_ring import DijkstraTokenRing
from repro.protocols.chains import (
    chain_agreement,
    chain_broadcast,
    chain_coloring,
    stabilizing_chain_coloring,
)

__all__ = [
    "chain_agreement",
    "chain_broadcast",
    "chain_coloring",
    "stabilizing_chain_coloring",
    "MATCHING_LEGITIMACY",
    "matching_base",
    "generalizable_matching",
    "nongeneralizable_matching",
    "gouda_acharya_matching",
    "agreement",
    "livelock_agreement",
    "stabilizing_agreement",
    "coloring",
    "two_coloring",
    "three_coloring",
    "sum_not_two",
    "stabilizing_sum_not_two",
    "DijkstraTokenRing",
]
