"""Maximal matching on a bidirectional ring (Examples 4.1–4.3, Figure 8).

Each process owns ``m_r`` with domain ``{left, right, self}`` meaning "I
match my predecessor / my successor / nobody".  The legitimate local states
(Example 4.1) are::

    LC_r =  (m_r = right ∧ m_{r+1} = left)
          ∨ (m_{r-1} = right ∧ m_r = left)
          ∨ (m_{r-1} = left ∧ m_r = self ∧ m_{r+1} = right)

Three action sets are provided:

* :func:`generalizable_matching` — Example 4.2, synthesized by STSyn for
  K=6; its deadlock-induced RCG has no illegitimate cycle, so it is
  deadlock-free for **every** K (Figure 2).
* :func:`nongeneralizable_matching` — Example 4.3, synthesized for K=5;
  its RCG has illegitimate cycles of lengths 4 and 6 through
  ``⟨left,left,self⟩`` (Figure 3), so rings whose size is a combination
  of 4s and 6s deadlock.
* :func:`gouda_acharya_matching` — the livelock-relevant fragment of the
  Gouda–Acharya solution [23] (Figure 8), which livelocks at K=5.
"""

from __future__ import annotations

from repro.protocol.dsl import parse_actions
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import Variable

LEFT, RIGHT, SELF = "left", "right", "self"

MATCHING_DOMAIN = (LEFT, RIGHT, SELF)

MATCHING_LEGITIMACY = (
    "(m[0] == 'right' and m[1] == 'left')"
    " or (m[-1] == 'right' and m[0] == 'left')"
    " or (m[-1] == 'left' and m[0] == 'self' and m[1] == 'right')"
)


def _matching_protocol(name: str, action_texts, description: str,
                       ) -> RingProtocol:
    m = Variable("m", MATCHING_DOMAIN)
    actions = parse_actions(action_texts, [m])
    process = ProcessTemplate(variables=(m,), actions=actions,
                              reads_left=1, reads_right=1)
    return RingProtocol(name, process, MATCHING_LEGITIMACY,
                        description=description)


def matching_base() -> RingProtocol:
    """The matching problem with no actions (invariant only;
    Example 4.1)."""
    return _matching_protocol(
        "maximal-matching", (),
        "Maximal matching invariant on a bidirectional ring "
        "(Example 4.1); no actions.")


def generalizable_matching() -> RingProtocol:
    """The Example 4.2 protocol: deadlock-free for every ring size."""
    texts = [
        ("A1", "m[-1] == 'left' and m[0] != 'self' and m[1] == 'right'"
               " -> m := 'self'"),
        ("A2", "m[-1] == 'self' and m[0] == 'self' and m[1] == 'self'"
               " -> m := 'right' | 'left'"),
        ("A3a", "m[-1] == 'right' and m[0] == 'self' -> m := 'left'"),
        ("A3b", "m[0] == 'self' and m[1] == 'left' -> m := 'right'"),
        ("A4a", "m[-1] == 'right' and m[0] == 'right' and m[1] != 'left'"
                " -> m := 'left'"),
        ("A4b", "m[-1] != 'right' and m[0] == 'left' and m[1] == 'left'"
                " -> m := 'right'"),
        ("A5a", "m[-1] == 'self' and m[0] != 'left' and m[1] == 'right'"
                " -> m := 'left'"),
        ("A5b", "m[-1] == 'left' and m[0] != 'right' and m[1] == 'self'"
                " -> m := 'right'"),
    ]
    return _matching_protocol(
        "matching-ex4.2", texts,
        "Example 4.2: STSyn solution for K=6 whose continuation relation "
        "proves deadlock-freedom for arbitrary K (Figure 2).")


def nongeneralizable_matching() -> RingProtocol:
    """The Example 4.3 protocol: stabilizes for K=5, deadlocks at K=6."""
    texts = [
        ("B1", "m[-1] == 'left' and m[0] != 'self' and m[1] == 'right'"
               " -> m := 'self'"),
        ("B2a", "m[-1] == 'right' and m[0] == 'self' and m[1] == 'left'"
                " -> m := 'right'"),
        ("B2b", "m[-1] == 'self' and m[0] == 'self' and m[1] == 'self'"
                " -> m := 'right'"),
        ("B3a", "m[-1] == 'right' and m[0] == 'right' and m[1] == 'left'"
                " -> m := 'left'"),
        ("B3b", "m[-1] == 'self' and m[0] == 'self' and m[1] == 'right'"
                " -> m := 'left'"),
        ("B4a", "m[-1] == 'right' and m[0] != 'left' and m[1] != 'left'"
                " -> m := 'left'"),
        ("B4b", "m[-1] != 'right' and m[0] != 'right' and m[1] == 'left'"
                " -> m := 'right'"),
    ]
    return _matching_protocol(
        "matching-ex4.3", texts,
        "Example 4.3: STSyn solution for K=5 whose RCG has illegitimate "
        "deadlock cycles of lengths 4 and 6 through ⟨l,l,s⟩ (Figure 3).")


def gouda_acharya_matching() -> RingProtocol:
    """The livelock-relevant fragment of Gouda & Acharya's matching [23].

    Figure 8 shows only these two actions because only they participate in
    the K=5 livelock ``lslsl → ... → lslsl``; the fragment suffices to
    reproduce the livelock and its LTG contiguous trail.
    """
    texts = [
        ("t_ls", "m[0] == 'left' and m[-1] == 'left' -> m := 'self'"),
        ("t_sl", "m[0] == 'self' and m[-1] != 'left' -> m := 'left'"),
    ]
    return _matching_protocol(
        "matching-gouda-acharya", texts,
        "Livelock fragment of the Gouda–Acharya matching solution "
        "(Figure 8); livelocks at K=5.")
