"""Dijkstra's K-state token ring [1].

Section 5 cites this protocol as the classic witness that *corrupting*
convergence actions can still converge (so non-corruption is sufficient
but unnecessary for livelock-freedom).  It has a **distinguished root**
process and therefore falls outside the paper's symmetric parameterized
model; we provide it as a concrete-instance class compatible with the
global checker and the simulator (same duck-typed interface as
:class:`~repro.protocol.instance.RingInstance`), so the classic closure /
convergence facts can be model-checked and simulated.

Rules (values in ``{0..M-1}``, unidirectional reads):

* root ``P_0``:     ``x_0 = x_{K-1}  →  x_0 := (x_0 + 1) mod M``
* other ``P_i``:    ``x_i ≠ x_{i-1}  →  x_i := x_{i-1}``

A process is *privileged* (holds a token) when its guard is true; the
invariant is "exactly one token".  With ``M >= K`` the protocol is
self-stabilizing.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.errors import ProtocolDefinitionError
from repro.protocol.instance import Move

GlobalState = tuple


class DijkstraTokenRing:
    """A concrete instance of Dijkstra's first (K-state) protocol.

    Not a :class:`RingProtocol` (the root breaks process symmetry), but it
    implements the instance interface used by :mod:`repro.checker` and
    :mod:`repro.simulation`.
    """

    def __init__(self, size: int, values: int | None = None) -> None:
        if size < 2:
            raise ProtocolDefinitionError("token ring needs >= 2 processes")
        self.size = size
        self.values = size if values is None else values
        if self.values < 2:
            raise ProtocolDefinitionError("token ring needs >= 2 values")
        self.name = f"dijkstra-token-ring(K={size}, M={self.values})"

    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return self.values ** self.size

    def states(self) -> Iterator[GlobalState]:
        return product(range(self.values), repeat=self.size)

    def state_of(self, *values: int) -> GlobalState:
        if len(values) != self.size:
            raise ProtocolDefinitionError(
                f"expected {self.size} values, got {len(values)}")
        for value in values:
            if not 0 <= value < self.values:
                raise ProtocolDefinitionError(
                    f"value {value} outside 0..{self.values - 1}")
        return tuple(values)

    # ------------------------------------------------------------------
    def privileged(self, state: GlobalState) -> list[int]:
        """Processes holding a token at *state*."""
        holders = []
        if state[0] == state[-1]:
            holders.append(0)
        holders.extend(i for i in range(1, self.size)
                       if state[i] != state[i - 1])
        return holders

    # Instance interface -------------------------------------------------
    def enabled_processes(self, state: GlobalState) -> list[int]:
        return self.privileged(state)

    def moves(self, state: GlobalState) -> list[Move]:
        moves = []
        for process in self.privileged(state):
            values = list(state)
            if process == 0:
                values[0] = (values[0] + 1) % self.values
            else:
                values[process] = values[process - 1]
            moves.append(Move(process, f"pass@{process}", tuple(values)))
        return moves

    def successors(self, state: GlobalState) -> list[GlobalState]:
        return [move.target for move in self.moves(state)]

    def is_deadlock(self, state: GlobalState) -> bool:
        # Never: the root is enabled whenever no other process is.
        return not self.privileged(state)

    def invariant_holds(self, state: GlobalState) -> bool:
        """Exactly one token in the ring."""
        return len(self.privileged(state)) == 1

    def corrupted_processes(self, state: GlobalState) -> list[int]:
        """Token holders beyond the first (a global notion here — the
        invariant is not locally conjunctive for this protocol)."""
        holders = self.privileged(state)
        return holders[1:] if len(holders) > 1 else []

    def format_state(self, state: GlobalState) -> str:
        marks = []
        privileged = set(self.privileged(state))
        for i, value in enumerate(state):
            marks.append(f"{value}*" if i in privileged else f"{value}")
        return "(" + " ".join(marks) + ")"

    def __repr__(self) -> str:
        return f"DijkstraTokenRing(size={self.size}, values={self.values})"
