"""Chain-topology case studies (the future-work direction of §8).

Two workloads that showcase why acyclic topologies are easier than
rings (§3 notes rings are hard exactly because corruption can cycle):

* **chain 2-coloring** — impossible to stabilize on unidirectional
  rings [25], yet on a chain the very candidate pair {t01, t10} that
  Theorem 5.14 must reject on rings is perfectly fine: enablement falls
  off the right end instead of circulating.
* **chain agreement / broadcast** — every process copies its
  predecessor; with a fixed left boundary the chain converges to the
  boundary value everywhere (a self-stabilizing broadcast).
"""

from __future__ import annotations

from repro.protocol.chain import ChainProtocol
from repro.protocol.dsl import parse_actions
from repro.protocol.process import ProcessTemplate
from repro.protocol.variables import ranged


CHAIN_REGISTRY = {
    "2-coloring-chain": lambda: chain_coloring(2),
    "3-coloring-chain": lambda: chain_coloring(3),
    "2-coloring-chain-ss": lambda: stabilizing_chain_coloring(2),
    "agreement-chain": lambda: chain_agreement(),
    "broadcast-chain": lambda: chain_broadcast(),
}
"""Name → factory map for the CLI's ``chain`` subcommand."""


def get_chain_protocol(name: str) -> ChainProtocol:
    """Build the registered chain protocol *name*."""
    try:
        factory = CHAIN_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CHAIN_REGISTRY))
        raise KeyError(f"unknown chain protocol {name!r}; "
                       f"known: {known}") from None
    return factory()


def chain_coloring(colors: int = 2, boundary: int = 0) -> ChainProtocol:
    """The coloring invariant on a unidirectional chain (no actions)."""
    if colors < 2:
        raise ValueError("coloring needs at least 2 colors")
    c = ranged("c", colors)
    process = ProcessTemplate(variables=(c,))
    return ChainProtocol(
        f"{colors}-coloring-chain", process, "c[0] != c[-1]",
        left_boundary=boundary,
        description=f"{colors}-coloring on an open chain; position 0 "
                    f"colors against the boundary value {boundary}.")


def stabilizing_chain_coloring(colors: int = 2,
                               boundary: int = 0) -> ChainProtocol:
    """A self-stabilizing chain coloring: recolor against the
    predecessor (cyclically).  Livelock-free by chain termination."""
    if colors < 2:
        raise ValueError("coloring needs at least 2 colors")
    c = ranged("c", colors)
    actions = parse_actions(
        [("next", f"c[0] == c[-1] -> c := (c[0] + 1) % {colors}")], [c])
    process = ProcessTemplate(variables=(c,), actions=actions)
    return ChainProtocol(
        f"{colors}-coloring-chain-ss", process, "c[0] != c[-1]",
        left_boundary=boundary,
        description="Recolor to predecessor+1 whenever equal; "
                    "self-stabilizing on chains of every length.")


def chain_agreement(values: int = 2, boundary: int = 0) -> ChainProtocol:
    """The agreement invariant on a chain (no actions)."""
    x = ranged("x", values)
    process = ProcessTemplate(variables=(x,))
    return ChainProtocol(
        "agreement-chain", process, "x[0] == x[-1]",
        left_boundary=boundary,
        description="Agreement on a chain: with the fixed boundary the "
                    "legitimate states pin every process to the "
                    "boundary value.")


def chain_broadcast(values: int = 2, boundary: int = 0) -> ChainProtocol:
    """Self-stabilizing broadcast: copy the predecessor.

    Converges, for every chain length, to all processes holding the
    boundary value — recovery is a wave from the left.
    """
    x = ranged("x", values)
    actions = parse_actions(
        [("copy", "x[0] != x[-1] -> x := x[-1]")], [x])
    process = ProcessTemplate(variables=(x,), actions=actions)
    return ChainProtocol(
        "broadcast-chain", process, "x[0] == x[-1]",
        left_boundary=boundary,
        description="Copy-the-predecessor broadcast; stabilizes to the "
                    "boundary value on every chain length.")
