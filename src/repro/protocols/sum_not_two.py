"""The sum-not-two protocol (Section 6.2).

``x_r ∈ {0,1,2}``, ``LC_r = (x_r + x_{r-1} ≠ 2)``.  All three illegitimate
states ``⟨2,0⟩, ⟨1,1⟩, ⟨0,2⟩`` must be resolved; the paper shows that the
candidate set ``{t21, t10, t02}`` has a pseudo-livelock participating in a
(spurious!) contiguous trail — so the methodology rejects it, illustrating
that Theorem 5.14 is sufficient but not necessary — while
``{t21, t12, t01}`` is accepted and yields a convergent protocol,
captured by the guarded commands below.
"""

from __future__ import annotations

from repro.protocol.dsl import parse_actions
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged

SUM_NOT_TWO_LEGITIMACY = "x[0] + x[-1] != 2"


def _protocol(name: str, texts, description: str) -> RingProtocol:
    x = ranged("x", 3)
    actions = parse_actions(texts, [x])
    process = ProcessTemplate(variables=(x,), actions=actions,
                              reads_left=1, reads_right=0)
    return RingProtocol(name, process, SUM_NOT_TWO_LEGITIMACY,
                        description=description)


def forbidden_sum(domain: int, forbidden: int) -> RingProtocol:
    """The generalized family: ``LC_r = (x_r + x_{r-1} != forbidden)``.

    ``forbidden_sum(3, 2)`` is the paper's sum-not-two.  The family is a
    useful synthesis workload: the number of illegitimate local states,
    the Resolve structure and the trail landscape all vary with
    ``(domain, forbidden)``.
    """
    if domain < 2:
        raise ValueError("forbidden_sum needs a domain of at least 2")
    if not 0 <= forbidden <= 2 * (domain - 1):
        raise ValueError(
            f"forbidden sum {forbidden} is unreachable for domain "
            f"0..{domain - 1}")
    x = ranged("x", domain)
    process = ProcessTemplate(variables=(x,), actions=(),
                              reads_left=1, reads_right=0)
    return RingProtocol(
        f"sum-not-{forbidden}(d{domain})", process,
        f"x[0] + x[-1] != {forbidden}",
        description=f"Forbidden-sum invariant over 0..{domain - 1}: "
                    f"adjacent values must not add up to {forbidden}.")


def sum_not_two() -> RingProtocol:
    """The empty input protocol (the synthesis problem of §6.2)."""
    return _protocol("sum-not-two", (),
                     "Sum-not-two invariant (x_r + x_{r-1} != 2); "
                     "no actions.")


def stabilizing_sum_not_two() -> RingProtocol:
    """The paper's accepted solution ``{t21, t12, t01}``.

    Rendered as the two guarded commands of Section 6.2::

        (x_r + x_{r-1} = 2) ∧ (x_r ≠ 2) → x_r := (x_r + 1) mod 3
        (x_r + x_{r-1} = 2) ∧ (x_r = 2) → x_r := (x_r - 1) mod 3

    which pick exactly the transitions ``20→21`` (t01), ``11→12`` (t12)
    and ``02→01`` (t21).
    """
    texts = [
        ("up", "x[0] + x[-1] == 2 and x[0] != 2 -> x := (x[0] + 1) % 3"),
        ("down", "x[0] + x[-1] == 2 and x[0] == 2 -> x := (x[0] - 1) % 3"),
    ]
    return _protocol("sum-not-two-ss", texts,
                     "Section 6.2 synthesized sum-not-two solution "
                     "{t21, t12, t01}; converges for every K.")
