"""Deterministic text renderings of local-state graphs and result tables."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graphs import Digraph
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState


def state_label(state: LocalState) -> str:
    """Compact label: first letter of string values, digits otherwise.

    ``⟨left left self⟩ -> 'lls'``, ``⟨0 1⟩ -> '01'``.
    """
    parts = []
    for cell in state.cells:
        for value in cell:
            text = str(value)
            parts.append(text[0] if text and not text.isdigit() else text)
    return "".join(parts)


def adjacency_listing(graph: Digraph,
                      legitimate: Iterable[LocalState] = (),
                      ) -> str:
    """A sorted, line-per-node adjacency listing.

    Illegitimate nodes are suffixed ``!``; t-arc targets are rendered as
    ``=label=>`` and s-arcs as ``->``.
    """
    legit = set(legitimate)

    def tag(node) -> str:
        label = state_label(node) if isinstance(node, LocalState) else \
            str(node)
        if legit and node not in legit:
            label += "!"
        return label

    lines = []
    for node in sorted(graph.nodes, key=repr):
        arcs = []
        for target in sorted(graph.successors(node), key=repr):
            for key in sorted(graph.edge_keys(node, target), key=repr):
                if isinstance(key, LocalTransition):
                    arcs.append(f"={key.label or 't'}=> {tag(target)}")
                else:
                    arcs.append(f"-> {tag(target)}")
        lines.append(f"{tag(node)}: " + ("  ".join(arcs) if arcs else "-"))
    return "\n".join(lines)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A minimal fixed-width table (no external dependencies)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(row)).rstrip()

    lines = [fmt(headers), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)
