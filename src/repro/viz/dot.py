"""Graphviz DOT emission for RCGs and LTGs (the paper's figures)."""

from __future__ import annotations

from typing import Iterable

from repro.graphs import Digraph
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState
from repro.viz.ascii_art import state_label


def _node_id(node) -> str:
    label = state_label(node) if isinstance(node, LocalState) else str(node)
    return '"' + label.replace('"', r"\"") + '"'


def rcg_to_dot(graph: Digraph,
               legitimate: Iterable[LocalState] = (),
               title: str = "RCG") -> str:
    """DOT rendering of a continuation graph.

    Legitimate local states are drawn filled (the paper draws them as
    colored vertices); arcs are plain.
    """
    legit = set(legitimate)
    lines = [f'digraph "{title}" {{', "  rankdir=LR;",
             "  node [shape=circle, fontsize=10];"]
    for node in sorted(graph.nodes, key=repr):
        style = ('style=filled, fillcolor="palegreen"'
                 if node in legit else 'style=filled, fillcolor="white"')
        lines.append(f"  {_node_id(node)} [{style}];")
    for source, target, key in sorted(graph.edges(), key=repr):
        if isinstance(key, LocalTransition):
            continue  # s-arcs only in an RCG view
        lines.append(f"  {_node_id(source)} -> {_node_id(target)};")
    lines.append("}")
    return "\n".join(lines)


def ltg_to_dot(graph: Digraph,
               legitimate: Iterable[LocalState] = (),
               title: str = "LTG") -> str:
    """DOT rendering of a Local Transition Graph.

    s-arcs are dashed; t-arcs are solid, bold and labelled with the
    transition label — mirroring the paper's Figure 4 convention.
    """
    legit = set(legitimate)
    lines = [f'digraph "{title}" {{', "  rankdir=LR;",
             "  node [shape=circle, fontsize=10];"]
    for node in sorted(graph.nodes, key=repr):
        style = ('style=filled, fillcolor="palegreen"'
                 if node in legit else 'style=filled, fillcolor="white"')
        lines.append(f"  {_node_id(node)} [{style}];")
    for source, target, key in sorted(graph.edges(), key=repr):
        if isinstance(key, LocalTransition):
            label = key.label or "t"
            lines.append(
                f"  {_node_id(source)} -> {_node_id(target)} "
                f'[style=bold, label="{label}"];')
        else:
            lines.append(f"  {_node_id(source)} -> {_node_id(target)} "
                         f"[style=dashed, color=gray50];")
    lines.append("}")
    return "\n".join(lines)
