"""Textual rendering of analysis artifacts beyond raw graphs."""

from __future__ import annotations

from repro.viz.ascii_art import state_label


def render_trail_witness(witness) -> str:
    """Multi-line rendering of a contiguous-trail witness."""
    lines = [f"contiguous trail candidate at K={witness.ring_size}, "
             f"|E|={witness.enablements}"]
    lines.append("  t-arcs (the pseudo-livelock):")
    for transition in sorted(witness.t_arcs, key=str):
        lines.append(f"    {state_label(transition.source)} "
                     f"=> {state_label(transition.target)}"
                     + (f"  [{transition.label}]" if transition.label
                        else ""))
    lines.append("  states visited: "
                 + " ".join(state_label(s) for s in witness.states))
    lines.append("  illegitimate among them: "
                 + " ".join(state_label(s)
                            for s in witness.illegitimate_states))
    return "\n".join(lines)


def render_ranking_stairs(certificate, width: int = 40) -> str:
    """The "convergence stairs": one bar per rank value.

    Rank 0 is the invariant; higher ranks are further from recovery
    under the worst daemon.
    """
    layers = certificate.layers()
    peak = max(layers.values())
    lines = [f"convergence stairs (max rank {certificate.max_rank}, "
             f"{sum(layers.values())} states)"]
    for rank, count in layers.items():
        bar = "#" * max(1, round(width * count / peak))
        tag = " (I)" if rank == 0 else ""
        lines.append(f"  rank {rank:3d} | {bar} {count}{tag}")
    return "\n".join(lines)


def render_livelock_cycle(instance, cycle) -> str:
    """A livelock cycle with enabled processes marked per state."""
    lines = [f"livelock cycle of {len(cycle)} states at "
             f"K={instance.size}"]
    for state in cycle:
        enabled = set(instance.enabled_processes(state))
        marks = " ".join(f"{i}*" if i in enabled else f"{i} "
                         for i in range(instance.size))
        lines.append(f"  {instance.format_state(state)}   enabled: "
                     f"{marks}")
    return "\n".join(lines)
