"""Rendering of RCGs, LTGs and trails.

Every figure of the paper is a graph over local states; this package
emits them as Graphviz DOT (for the figures proper) and as deterministic
ASCII adjacency listings (used by the benchmark harness so figure content
is diffable in plain terminals).
"""

from repro.viz.dot import ltg_to_dot, rcg_to_dot
from repro.viz.report import (
    render_livelock_cycle,
    render_ranking_stairs,
    render_trail_witness,
)
from repro.viz.ascii_art import (
    adjacency_listing,
    render_table,
    state_label,
)

__all__ = [
    "rcg_to_dot",
    "ltg_to_dot",
    "adjacency_listing",
    "render_table",
    "state_label",
    "render_trail_witness",
    "render_ranking_stairs",
    "render_livelock_cycle",
]
