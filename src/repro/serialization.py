"""JSON serialization of protocols and analysis reports.

Protocols written in the guarded-command DSL round-trip losslessly
(guards, effects and the legitimacy constraint are stored as their
source text); callable-based protocols cannot be serialized and raise.
Analysis reports export one-way into plain dictionaries for logging or
CI artifacts — the CLI's ``--json`` flags use these.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolDefinitionError
from repro.protocol.chain import ChainProtocol
from repro.protocol.dsl import parse_actions
from repro.protocol.localstate import LocalState
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import Variable


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
def protocol_to_dict(protocol: RingProtocol | ChainProtocol,
                     ) -> dict[str, Any]:
    """A JSON-ready description of a DSL-defined protocol.

    Raises :class:`ProtocolDefinitionError` when any action or the
    legitimacy constraint lacks DSL source text (e.g. hand-written
    callables or synthesized state-matching actions).
    """
    legitimacy = getattr(protocol.legitimacy, "source_text", None)
    if legitimacy is None:
        raise ProtocolDefinitionError(
            f"protocol {protocol.name!r}: legitimacy has no DSL source; "
            f"only DSL-defined protocols serialize")
    from repro.errors import ReproError
    from repro.protocol.dsl import parse_action

    actions = []
    for action in protocol.process.actions:
        source = action.source_text
        if source is not None:
            try:  # must reparse cleanly, not merely look like DSL
                parse_action(source, protocol.process.variables)
            except ReproError:
                source = None
        if source is None:
            raise ProtocolDefinitionError(
                f"action {action.name!r} has no parseable DSL source; "
                f"only DSL-defined protocols serialize")
        actions.append({"name": action.name, "text": source})
    data: dict[str, Any] = {
        "name": protocol.name,
        "description": protocol.description,
        "variables": [{"name": v.name, "domain": list(v.domain)}
                      for v in protocol.process.variables],
        "reads_left": protocol.process.reads_left,
        "reads_right": protocol.process.reads_right,
        "legitimacy": legitimacy,
        "actions": actions,
    }
    if isinstance(protocol, ChainProtocol):
        data["topology"] = "chain"
        data["left_boundary"] = (list(protocol.left_boundary)
                                 if protocol.left_boundary is not None
                                 else None)
        data["right_boundary"] = (list(protocol.right_boundary)
                                  if protocol.right_boundary is not None
                                  else None)
    else:
        data["topology"] = "ring"
    return data


def protocol_from_dict(data: dict[str, Any],
                       ) -> RingProtocol | ChainProtocol:
    """Rebuild a protocol serialized by :func:`protocol_to_dict`."""
    variables = tuple(
        Variable(v["name"], tuple(v["domain"]))
        for v in data["variables"])
    actions = parse_actions(
        [(a["name"], a["text"]) for a in data["actions"]], variables)
    process = ProcessTemplate(
        variables=variables, actions=actions,
        reads_left=data["reads_left"], reads_right=data["reads_right"])
    topology = data.get("topology", "ring")
    if topology == "chain":
        def boundary(key):
            value = data.get(key)
            return tuple(value) if value is not None else None

        return ChainProtocol(
            data["name"], process, data["legitimacy"],
            left_boundary=boundary("left_boundary"),
            right_boundary=boundary("right_boundary"),
            description=data.get("description", ""))
    if topology != "ring":
        raise ProtocolDefinitionError(f"unknown topology {topology!r}")
    return RingProtocol(data["name"], process, data["legitimacy"],
                        description=data.get("description", ""))


def save_protocol(protocol, path) -> None:
    """Write a protocol to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(protocol_to_dict(protocol), handle, indent=2)


def load_protocol(path):
    """Load a protocol previously saved with :func:`save_protocol`."""
    with open(path) as handle:
        return protocol_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Canonical structure (fingerprint substrate)
# ----------------------------------------------------------------------
def protocol_structure_dict(protocol) -> dict[str, Any]:
    """A canonical, content-addressed description of a protocol.

    Unlike :func:`protocol_to_dict` this never needs DSL source text: it
    enumerates the local state space, so callable-based and synthesized
    protocols are covered too.  Two protocols with equal structure dicts
    are interchangeable for every analysis in this repository — the
    description captures exactly the verdict-relevant content (variables,
    read window, transition set, legitimate local states, topology) and
    deliberately omits presentation details such as the protocol name,
    its description, and action labels.  ``repro.engine`` hashes this
    dict into cache keys.
    """
    process = protocol.process
    space = protocol.space
    data: dict[str, Any] = {
        "variables": [[v.name, list(v.domain)]
                      for v in process.variables],
        "reads_left": process.reads_left,
        "reads_right": process.reads_right,
        "legitimate": sorted(repr(s.cells)
                             for s in protocol.legitimate_states()),
        "transitions": sorted(repr((t.source.cells, t.target.cells))
                              for t in space.transitions),
    }
    if isinstance(protocol, ChainProtocol):
        data["topology"] = "chain"
        data["left_boundary"] = repr(protocol.left_boundary)
        data["right_boundary"] = repr(protocol.right_boundary)
    else:
        data["topology"] = "ring"
    return data


# ----------------------------------------------------------------------
# Reports (one-way export)
# ----------------------------------------------------------------------
def _state_str(state: LocalState) -> str:
    return str(state)


def engine_stats_to_dict(stats) -> dict[str, Any] | None:
    """Export an :class:`~repro.engine.EngineStats` (or ``None``)."""
    return None if stats is None else stats.to_dict()


def convergence_report_to_dict(report) -> dict[str, Any]:
    """Export a :class:`~repro.core.convergence.ConvergenceReport`."""
    deadlock = report.deadlock
    data: dict[str, Any] = {
        "verdict": report.verdict.value,
        "closure_ok": report.closure_ok,
        "deadlock": {
            "deadlock_free": deadlock.deadlock_free,
            "local_deadlocks": [_state_str(s)
                                for s in deadlock.local_deadlocks],
            "illegitimate_deadlocks": [
                _state_str(s) for s in deadlock.illegitimate_deadlocks],
            "witness_cycles": [[_state_str(s) for s in cycle]
                               for cycle in deadlock.witness_cycles],
        },
    }
    if report.livelock is None:
        data["livelock"] = None
    else:
        data["livelock"] = {
            "verdict": report.livelock.verdict.value,
            "contiguous_only": report.livelock.contiguous_only,
            "supports_checked": report.livelock.supports_checked,
            "trail_witnesses": [
                {
                    "ring_size": w.ring_size,
                    "enablements": w.enablements,
                    "t_arcs": sorted(str(t) for t in w.t_arcs),
                    "illegitimate_states": [
                        _state_str(s) for s in w.illegitimate_states],
                }
                for w in report.livelock.trail_witnesses
            ],
        }
    data["stats"] = engine_stats_to_dict(report.stats)
    return data


def global_report_to_dict(report) -> dict[str, Any]:
    """Export a :class:`~repro.checker.convergence.GlobalReport`."""
    return {
        "ring_size": report.ring_size,
        "state_count": report.state_count,
        "invariant_count": report.invariant_count,
        "closed": report.closed,
        "deadlocks_outside": len(report.deadlocks_outside),
        "livelock_cycles": len(report.livelock_cycles),
        "strongly_converging": report.strongly_converging,
        "weakly_converging": report.weakly_converging,
        "self_stabilizing": report.self_stabilizing,
        "worst_case_recovery_steps": report.worst_case_recovery_steps,
        "stats": engine_stats_to_dict(getattr(report, "stats", None)),
    }
