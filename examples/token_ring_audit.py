#!/usr/bin/env python3
"""Dijkstra's K-state token ring: corrupting convergence that still works.

Section 5 cites Dijkstra's token ring as the classic reason why
*non-corruption* of convergence actions cannot be required: its actions
freely corrupt neighbours, yet the protocol converges to the one-token
invariant.  This example model-checks closure and strong convergence for
several sizes, shows the token count is non-increasing, and simulates
recovery from multi-token states.
"""

import random

from repro.checker import check_instance
from repro.protocols import DijkstraTokenRing
from repro.simulation import RandomScheduler, run_until_convergence
from repro.viz import render_table


def main() -> None:
    rows = []
    for size in (2, 3, 4, 5):
        ring = DijkstraTokenRing(size)  # M = K values: stabilizing
        report = check_instance(ring)
        rows.append((size, ring.values, report.state_count,
                     report.closed, report.strongly_converging,
                     report.worst_case_recovery_steps))
        assert report.closed
        assert report.strongly_converging
    print("model checking Dijkstra's token ring (M = K):")
    print(render_table(
        ["K", "M", "states", "closed", "strong conv.", "worst recovery"],
        rows))
    print()

    # With too few values (M < K) stabilization can fail: exhibit it.
    degenerate = DijkstraTokenRing(4, values=2)
    report = check_instance(degenerate)
    print(f"degenerate M=2, K=4: strongly converging = "
          f"{report.strongly_converging} "
          f"(livelock witnesses: {len(report.livelock_cycles)})")
    assert not report.strongly_converging
    print()

    # Simulate recovery from the all-different "many tokens" state.
    ring = DijkstraTokenRing(5)
    rng = random.Random(3)
    print("sample recoveries (tokens marked *):")
    for sample in range(3):
        start = tuple(rng.randrange(ring.values) for _ in range(ring.size))
        trace = run_until_convergence(ring, start,
                                      RandomScheduler(seed=sample))
        first, last = trace.states[0], trace.states[-1]
        print(f"  {ring.format_state(first)}  --{trace.recovery_steps} "
              f"steps-->  {ring.format_state(last)}")
        tokens = [len(ring.privileged(s)) for s in trace.states]
        assert all(a >= b for a, b in zip(tokens, tokens[1:])), \
            "token count increased"
    print("token count was non-increasing along every trace")


if __name__ == "__main__":
    main()
