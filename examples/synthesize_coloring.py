#!/usr/bin/env python3
"""The Section 6 synthesis methodology on four invariants.

Reproduces the walkthroughs of Sections 6.1 and 6.2:

* **3-coloring** — every candidate combination's pseudo-livelocks form
  contiguous trails: the methodology declares failure (Figure 9);
* **2-coloring** — both illegitimate deadlocks carry continuation
  self-loops, the single candidate pair forms a trail: failure, which is
  consistent with the impossibility of self-stabilizing 2-coloring on
  unidirectional rings [25] (Figure 11);
* **agreement** — a single copy direction suffices: success with no
  pseudo-livelock at all (Figure 10);
* **sum-not-two** — success at the PL stage: pseudo-livelocks exist but
  none forms a trail (Figure 12); the rejected combination
  ``{t21, t10, t02}`` demonstrates that Theorem 5.14 is sufficient only —
  its trail corresponds to no real livelock.
"""

from repro import synthesize_convergence, verify_convergence
from repro.checker import check_instance
from repro.protocols import (
    agreement,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.viz import render_table


def main() -> None:
    rows = []
    for factory in (three_coloring, two_coloring, agreement, sum_not_two):
        protocol = factory()
        result = synthesize_convergence(protocol)
        rows.append((protocol.name, result.outcome.value,
                     len(result.rejected),
                     ", ".join(t.label for t in result.chosen) or "-"))
        print(f"== {protocol.name} ==")
        print(result.summary())
        if result.succeeded:
            # Parameterized verification of the synthesized protocol...
            report = verify_convergence(result.protocol)
            print(f"verified for all K: {report.verdict.value}")
            assert report.verdict.value == "converges"
            # ...and a concrete-instance spot check.
            for size in (3, 5, 8):
                instance = result.protocol.instantiate(size)
                global_report = check_instance(instance)
                assert global_report.self_stabilizing, size
            print("global spot checks at K=3,5,8: self-stabilizing")
        print()

    print(render_table(
        ["protocol", "outcome", "rejected combos", "added transitions"],
        rows))


if __name__ == "__main__":
    main()
