#!/usr/bin/env python3
"""Evidence beyond verdicts: rankings, rounds and machine-readable
reports.

A downstream user rarely wants a bare "converges"; they want
*artifacts*: a checkable certificate, a daemon-independent time bound,
and JSON they can archive in CI.  This example produces all three for
the synthesized sum-not-two protocol:

* a strict **ranking certificate** (every step outside I decreases it),
  independently re-verified, whose maximum is the worst-daemon recovery
  time — and we confirm no adversarial run exceeds it;
* **rounds-to-convergence** statistics (the SS literature's measure);
* the parameterized report exported as **JSON**, plus the protocol
  itself round-tripped through its JSON form and re-verified.
"""

import json
import random

from repro.checker import StateGraph, check_instance, compute_ranking, \
    verify_ranking
from repro.core import verify_convergence
from repro.protocols import stabilizing_sum_not_two
from repro.serialization import (
    convergence_report_to_dict,
    protocol_from_dict,
    protocol_to_dict,
)
from repro.simulation import (
    AdversarialScheduler,
    RandomScheduler,
    random_state,
    run,
    rounds_to_convergence,
)
from repro.viz import render_ranking_stairs, render_table


def main() -> None:
    protocol = stabilizing_sum_not_two()
    size = 5
    instance = protocol.instantiate(size)

    print("== ranking certificate ==")
    graph = StateGraph(instance)
    certificate = compute_ranking(graph)
    assert certificate is not None
    assert verify_ranking(graph, certificate.ranks)
    print(render_ranking_stairs(certificate))
    print()

    # No adversary can outlast the certificate's maximum.
    worst_seen = 0
    for seed in range(50):
        start = graph.states[(seed * 13) % len(graph)]
        trace = run(instance, start,
                    AdversarialScheduler(instance, seed=seed),
                    max_steps=certificate.max_rank + 1)
        assert trace.converged
        worst_seen = max(worst_seen, trace.recovery_steps)
    print(f"adversarial runs: worst observed {worst_seen} steps "
          f"<= certified bound {certificate.max_rank}")
    best = check_instance(instance).worst_case_recovery_steps
    print(f"(best-daemon bound for comparison: {best} steps)")
    print()

    print("== rounds to convergence ==")
    rng = random.Random(0)
    rows = []
    for sample_size in (4, 6, 8):
        inst = protocol.instantiate(sample_size)
        rounds = []
        for seed in range(40):
            trace = run(inst, random_state(inst, rng),
                        RandomScheduler(seed=seed), max_steps=500)
            if trace.converged:
                measured = rounds_to_convergence(inst, trace)
                if measured is not None:
                    rounds.append(measured)
        rows.append((sample_size, f"{sum(rounds)/len(rounds):.1f}",
                     max(rounds)))
    print(render_table(["K", "mean rounds", "max rounds"], rows))
    print()

    print("== machine-readable artifacts ==")
    report = verify_convergence(protocol)
    payload = convergence_report_to_dict(report)
    print("verdict from JSON:", json.dumps(payload["verdict"]))
    rebuilt = protocol_from_dict(protocol_to_dict(protocol))
    assert verify_convergence(rebuilt).verdict.value == "converges"
    print("protocol JSON round-trip re-verified: converges")


if __name__ == "__main__":
    main()
