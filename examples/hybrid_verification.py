#!/usr/bin/env python3
"""Closing the sufficiency gap: hybrid verification and synthesis.

Theorem 5.14 is sufficient but not necessary — its trail witnesses may
be *spurious* (the paper demonstrates this for sum-not-two, §6.2, where
the rejected candidate's trail "fails to reconstruct" into a livelock).
The hybrid verifier automates that reconstruction argument with bounded
global checking:

* a protocol whose trail is **real** (Example 5.2's two-direction
  agreement) is refuted with a concrete livelock counterexample;
* a protocol whose trail is **spurious** (the paper's rejected
  sum-not-two candidate) is certified deadlock-free for all K and
  livelock-free for every checked size;
* hybrid *synthesis* then recovers that very candidate as a
  bounded-guarantee solution the pure local methodology had to reject.
"""

from repro.core.hybrid import (
    HybridVerdict,
    hybrid_synthesize,
    hybrid_verify,
)
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocols import livelock_agreement, sum_not_two


def rejected_candidate():
    """Sum-not-two equipped with the paper's rejected {t21, t10, t02}."""
    protocol = sum_not_two()
    space = protocol.space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)),
                               f"t{b}{new}")

    combo = [t(0, 2, 1), t(1, 1, 0), t(2, 0, 2)]
    return protocol.extended_with(
        [action_for_transition(x, x.label) for x in combo])


def main() -> None:
    print("== a REAL trail: agreement with both copy directions ==")
    report = hybrid_verify(livelock_agreement(), check_up_to=6)
    print(report.summary())
    assert report.verdict is HybridVerdict.DIVERGES_LIVELOCK
    cycle = report.counterexample
    size = len(cycle[0])
    print(f"concrete livelock at K={size}: "
          + " -> ".join("".join(str(c[0]) for c in s) for s in cycle))
    print()

    print("== a SPURIOUS trail: the rejected sum-not-two candidate ==")
    candidate = rejected_candidate()
    report = hybrid_verify(candidate, check_up_to=7)
    print(report.summary())
    assert report.verdict is HybridVerdict.BOUNDED
    assert all(c.spurious for c in report.classifications)
    print()

    print("== hybrid synthesis recovers the bounded solution ==")
    result = hybrid_synthesize(candidate, check_up_to=7)
    print(f"guarantee: {result.guarantee}")
    assert result.succeeded and result.guarantee == "bounded"
    print(result.protocol.pretty())


if __name__ == "__main__":
    main()
