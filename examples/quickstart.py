#!/usr/bin/env python3
"""Quickstart: define a protocol, verify it for every ring size,
synthesize convergence, and watch it recover.

This walks the agreement example of Section 6.2 end to end:

1. define the agreement invariant (all processes equal) with an *empty*
   protocol — the synthesis problem;
2. run the Section 6 methodology to obtain a self-stabilizing protocol;
3. verify the result for **every** ring size with the local analyses
   (Theorem 4.2 exact deadlock-freedom + Theorem 5.14 livelock
   certificate);
4. cross-check one concrete size with the global model checker;
5. simulate recovery from a corrupted state.
"""

from repro import (
    ProcessTemplate,
    RingProtocol,
    check_instance,
    ranged,
    synthesize_convergence,
    verify_convergence,
)
from repro.simulation import RandomScheduler, run


def main() -> None:
    # 1. The problem: binary agreement, LC_r = (x_r = x_{r-1}), no actions.
    x = ranged("x", 2)
    empty_process = ProcessTemplate(variables=(x,))
    agreement = RingProtocol("agreement", empty_process, "x[0] == x[-1]")
    print("input protocol:")
    print(agreement.pretty())
    print()

    # 2. Synthesize convergence in the local state space (Section 6).
    result = synthesize_convergence(agreement)
    print("synthesis:", result.outcome.value)
    print(result.summary())
    assert result.succeeded
    protocol = result.protocol
    print()
    print("synthesized protocol:")
    print(protocol.pretty())
    print()

    # 3. Parameterized verification: holds for EVERY ring size.
    report = verify_convergence(protocol)
    print("parameterized verification:")
    print(report.summary())
    assert report.verdict.value == "converges"
    print()

    # 4. Cross-check one concrete ring with the global model checker.
    instance = protocol.instantiate(7)
    global_report = check_instance(instance)
    print("global model checking at K=7:")
    print(global_report.summary())
    assert global_report.self_stabilizing
    print()

    # 5. Simulate recovery from an arbitrary corrupted state.
    corrupted = instance.state_of(1, 0, 1, 1, 0, 0, 1)
    trace = run(instance, corrupted, RandomScheduler(seed=42))
    print(f"recovery from {instance.format_state(corrupted)}:")
    for state in trace.states:
        marker = " <- in I" if instance.invariant_holds(state) else ""
        print(f"  {instance.format_state(state)}{marker}")
    assert trace.converged


if __name__ == "__main__":
    main()
