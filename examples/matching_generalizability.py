#!/usr/bin/env python3
"""Generalizability audit of two synthesized maximal-matching protocols.

The paper's motivating phenomenon (Examples 4.2 vs 4.3): tools that
synthesize over the global state space of a *fixed* ring size produce
protocols with no guarantee for other sizes.  This example:

* runs the Theorem 4.2 analysis on both matching protocols;
* prints the illegitimate RCG cycles of the non-generalizable one
  (Figure 3: lengths 4 and 6 through ⟨left,left,self⟩);
* predicts, purely locally, exactly which ring sizes deadlock — including
  sizes like 7 and 10 that arise from *combining* cycles through the
  shared vertex, a refinement of the paper's "multiples of 4 or 6";
* confirms every prediction with the global model checker;
* reconstructs a concrete deadlocked ring from a witness cycle.
"""

from repro import analyze_deadlocks
from repro.checker import check_instance
from repro.core.deadlock import DeadlockAnalyzer
from repro.protocols import (
    generalizable_matching,
    nongeneralizable_matching,
)
from repro.viz import render_table, state_label

HORIZON = 12


def main() -> None:
    good = generalizable_matching()
    bad = nongeneralizable_matching()

    print("== Example 4.2 (synthesized at K=6) ==")
    report = analyze_deadlocks(good)
    print(f"local deadlocks: {len(report.local_deadlocks)}, "
          f"illegitimate: {len(report.illegitimate_deadlocks)}")
    print(f"deadlock-free for every K: {report.deadlock_free}")
    assert report.deadlock_free
    print()

    print("== Example 4.3 (synthesized at K=5) ==")
    report = analyze_deadlocks(bad)
    print(f"deadlock-free for every K: {report.deadlock_free}")
    for cycle in report.witness_cycles:
        labels = " -> ".join(state_label(s) for s in cycle)
        print(f"  illegitimate RCG cycle (length {len(cycle)}): {labels}")
    print()

    analyzer = DeadlockAnalyzer(bad)
    predicted = analyzer.deadlocked_ring_sizes(HORIZON)
    rows = []
    for size in range(3, HORIZON + 1):
        local = "deadlocks" if size in predicted else "clean"
        global_report = check_instance(bad.instantiate(size)) \
            if size <= 9 else None
        if global_report is None:
            confirmed = "(skipped)"
        else:
            confirmed = ("deadlocks"
                         if global_report.deadlocks_outside else "clean")
            assert confirmed == local, f"disagreement at K={size}"
        rows.append((size, local, confirmed))
    print("per-size verdicts (local prediction vs global checking):")
    print(render_table(["K", "local (Thm 4.2 walks)", "global checker"],
                       rows))
    print()

    # Build a concrete deadlocked ring from the length-4 witness cycle.
    cycle = min(report.witness_cycles, key=len)
    witness = report.witness_state(report.witness_cycles.index(cycle),
                                   repetitions=2)
    instance = bad.instantiate(len(witness))
    print(f"concrete deadlock for K={len(witness)}: "
          f"{instance.format_state(witness)}")
    assert instance.is_deadlock(witness)
    assert not instance.invariant_holds(witness)
    print("confirmed: globally deadlocked outside I")


if __name__ == "__main__":
    main()
