#!/usr/bin/env python3
"""Convergence-time study of the synthesized protocols under three
daemons, with transient-fault injection.

Complements the static certificates: a protocol proven strongly
convergent for all K (Theorem 4.2 + 5.14) is executed here on rings of
several sizes, from uniformly random states and from fault-injected
legitimate states, under random, round-robin and adversarial central
daemons.  Every run must converge — the daemons only change how fast.
"""

import random

from repro.protocols import (
    stabilizing_agreement,
    stabilizing_sum_not_two,
)
from repro.simulation import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    convergence_study,
    perturb,
    run_until_convergence,
)
from repro.viz import render_table


def daemon_comparison(protocol, sizes=(4, 6, 8, 10),
                      samples: int = 100) -> None:
    print(f"== {protocol.name}: mean recovery steps by daemon ==")
    rows = []
    for size in sizes:
        instance = protocol.instantiate(size)
        random_stats = convergence_study(
            instance, samples=samples, seed=1)
        rr_stats = convergence_study(
            instance, samples=samples, seed=2,
            scheduler_factory=lambda i: RoundRobinScheduler(size))
        adv_stats = convergence_study(
            instance, samples=samples, seed=3,
            scheduler_factory=lambda i: AdversarialScheduler(
                instance, seed=i))
        for stats in (random_stats, rr_stats, adv_stats):
            assert stats.converged == stats.samples, \
                "a certified-convergent protocol failed to converge"
        rows.append((size,
                     f"{random_stats.mean_steps:.1f}",
                     f"{rr_stats.mean_steps:.1f}",
                     f"{adv_stats.mean_steps:.1f}",
                     max(random_stats.max_steps, rr_stats.max_steps,
                         adv_stats.max_steps)))
    print(render_table(
        ["K", "random", "round-robin", "adversarial", "max steps"], rows))
    print()


def fault_injection(protocol, size: int = 8, bursts: int = 30) -> None:
    print(f"== {protocol.name}: {bursts} fault bursts at K={size} ==")
    instance = protocol.instantiate(size)
    rng = random.Random(7)
    # Start from a legitimate fixpoint: all processes agreeing / summing
    # legally — find one by searching the invariant.
    state = next(instance.invariant_states())
    recoveries = []
    for burst in range(bursts):
        faults = rng.randint(1, size // 2)
        state = perturb(instance, state, rng, faults=faults)
        trace = run_until_convergence(
            instance, state, RandomScheduler(seed=burst))
        recoveries.append((faults, trace.recovery_steps))
        state = trace.states[-1]
    worst = max(steps for _f, steps in recoveries)
    mean = sum(steps for _f, steps in recoveries) / len(recoveries)
    print(f"all {bursts} bursts recovered; "
          f"mean {mean:.1f} steps, worst {worst}")
    print()


def main() -> None:
    for factory in (stabilizing_agreement, stabilizing_sum_not_two):
        protocol = factory()
        daemon_comparison(protocol)
        fault_injection(protocol)


if __name__ == "__main__":
    main()
