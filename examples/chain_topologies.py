#!/usr/bin/env python3
"""Beyond rings: exact convergence analysis on chains.

The paper lists non-ring topologies as future work and notes that its
continuation relation extends naturally; on acyclic topologies the
nemesis of rings — circulating corruption — cannot occur.  This example
exercises the chain extension:

* 2-coloring is **impossible** to stabilize on unidirectional rings
  [25]; on a chain the synthesis succeeds with exactly the candidate
  pair the ring methodology had to reject, and the result is certified
  for every chain length (the chain analysis is *exact*, no UNKNOWN);
* the copy-the-predecessor broadcast stabilizes to the boundary value
  with a provable ``K(K+1)/2`` step bound, which we stress under an
  adversarial daemon.
"""

from repro.checker import check_instance
from repro.core.chains import (
    ChainDeadlockAnalyzer,
    synthesize_chain_convergence,
    verify_chain_convergence,
)
from repro.core import synthesize_convergence
from repro.protocols import chain_broadcast, chain_coloring, two_coloring
from repro.simulation import AdversarialScheduler, run
from repro.viz import render_table


def coloring_contrast() -> None:
    print("== 2-coloring: ring vs chain ==")
    ring_result = synthesize_convergence(two_coloring())
    print(f"on the ring:  {ring_result.outcome.value} "
          f"({len(ring_result.rejected)} combination(s) rejected)")
    assert not ring_result.succeeded

    chain_result = synthesize_chain_convergence(chain_coloring(2))
    print(f"on the chain: success with "
          + ", ".join(t.label for t in chain_result.chosen))
    assert chain_result.succeeded

    report = verify_chain_convergence(chain_result.protocol)
    print(report.summary())
    rows = []
    for size in (1, 2, 3, 5, 7, 9):
        global_report = check_instance(
            chain_result.protocol.instantiate(size))
        assert global_report.self_stabilizing
        rows.append((size, global_report.state_count,
                     global_report.worst_case_recovery_steps))
    print(render_table(["chain length", "states", "worst recovery"],
                       rows))
    print()


def broadcast_bound() -> None:
    print("== broadcast: the K(K+1)/2 termination bound ==")
    protocol = chain_broadcast(values=2, boundary=1)
    analyzer = ChainDeadlockAnalyzer(protocol)
    assert analyzer.analyze().deadlock_free
    rows = []
    for size in (3, 5, 8):
        instance = protocol.instantiate(size)
        bound = size * (size + 1) // 2
        worst = 0
        for pattern in range(2 ** size):
            start = tuple(((pattern >> i) & 1,) for i in range(size))
            trace = run(instance, start,
                        AdversarialScheduler(instance, seed=pattern),
                        max_steps=bound + 1)
            assert trace.converged
            worst = max(worst, trace.recovery_steps)
        rows.append((size, bound, worst))
        assert worst <= bound
    print(render_table(["K", "bound K(K+1)/2", "worst observed"], rows))


def main() -> None:
    coloring_contrast()
    broadcast_bound()


if __name__ == "__main__":
    main()
